//! The `imperfect` scenario family: graceful degradation under imperfect
//! information.
//!
//! Every other comparison hands the schedulers a clean world: exact
//! liveness, exact demand estimates, honest nodes. This family turns all
//! three dials at once and measures how gracefully each technique's tail
//! and request loss degrade:
//!
//! * **stragglers** — gray nodes keep accepting work with service times
//!   scaled by a factor ([`FaultKind::Degrade`]), so only latency betrays
//!   them;
//! * **noisy failure detection** — hooks see a [`FailureDetector`]'s
//!   *suspected* liveness (detection latency, false positives, false
//!   negatives) instead of ground truth;
//! * **prediction error** — the PCS cell runs the `pcs-n<σ>` technique,
//!   whose demand estimates carry seeded mean-one log-normal noise.
//!
//! The grid sweeps four monotone imperfection levels (clean → mild →
//! moderate → severe) over basic / ll / oracle / pcs. Every non-clean
//! level replays the same kill-restore outage, so detection quality is
//! what separates the techniques' request loss; the straggler plans use
//! [`FaultPlan::slow_node`] (mild) and [`FaultPlan::gray_rack`]
//! (moderate, severe) with rising slowdown factors. The summary pins the
//! per-technique degradation curve and the headline booleans: the PCS
//! tail degrades monotonically, and at the moderate level noisy PCS
//! still beats the reactive and blind baselines on both P99 and
//! requests lost.
//!
//! The clean level runs with no fault plan, no detector and σ = 0 — its
//! cells are byte-identical to the same techniques in a pristine world.

use super::{base_grid, kv, report_metrics, train_models};
use crate::experiments::fig6;
use crate::scenarios::failures::FAIL_NODE_COUNT;
use crate::techniques::{self, TechniqueRef};
use pcs_harness::{
    seed, CellOutcome, CellPlan, CellResult, Json, Scenario, SweepParams, SweepPlan,
};
use pcs_sim::{FailureDetector, FaultKind, FaultPlan, RunReport, SimConfig};
use pcs_types::{SimDuration, SimTime};

/// Straggler and kill victims come from the first four nodes, which all
/// host at least two components under anti-affine placement on the
/// 6-node cluster (shared with the failures family).
const VICTIM_POOL: usize = 4;

/// The gray rack's width at the moderate and severe levels.
const RACK_SIZE: usize = 2;

/// One imperfection level: how wrong each information channel is.
///
/// Every dial is monotone down the [`LEVELS`] table, so the measured
/// degradation curve has a single axis ("how imperfect") rather than a
/// cube of partial orderings.
struct Level {
    /// Registry name (`clean`, `mild`, …), also the cell coordinate.
    name: &'static str,
    /// Straggler service-time multiplier; 1.0 schedules no degrades.
    factor: f64,
    /// Detection latency as a fraction of the measured span (scales with
    /// `--smoke` like the outage timing does).
    latency_frac: f64,
    /// Detector false-positive rate (live node reported down).
    fp_rate: f64,
    /// Detector false-negative rate (dead node reported up).
    fn_rate: f64,
    /// Prediction-noise σ for the PCS cell (`pcs-n<σ>`).
    sigma: f64,
}

/// The four levels, pristine to hostile.
const LEVELS: [Level; 4] = [
    Level {
        name: "clean",
        factor: 1.0,
        latency_frac: 0.0,
        fp_rate: 0.0,
        fn_rate: 0.0,
        sigma: 0.0,
    },
    Level {
        name: "mild",
        factor: 1.5,
        latency_frac: 0.04,
        fp_rate: 0.002,
        fn_rate: 0.02,
        sigma: 0.1,
    },
    Level {
        name: "moderate",
        factor: 5.0,
        latency_frac: 0.10,
        fp_rate: 0.01,
        fn_rate: 0.05,
        sigma: 0.3,
    },
    Level {
        name: "severe",
        factor: 8.0,
        latency_frac: 0.40,
        fp_rate: 0.05,
        fn_rate: 0.25,
        sigma: 0.6,
    },
];

/// The `--smoke` shrink keeps the curve's endpoints meaningful: the
/// pristine baseline plus the level the headline booleans compare at.
const SMOKE_LEVELS: [&str; 2] = ["clean", "moderate"];

/// A level's effective imperfection after CLI overrides: each flag pins
/// one dial across *every* level so the remaining axes can be isolated
/// (`--fp-rate 0` sweeps latency and noise alone, and so on).
struct Effective {
    factor: f64,
    detector: Option<FailureDetector>,
    sigma: f64,
}

fn effective(level: &Level, params: &SweepParams, measured: SimDuration) -> Effective {
    let latency = params
        .detector_latency_secs
        .map(SimDuration::from_secs_f64)
        .unwrap_or_else(|| measured.mul_f64(level.latency_frac));
    let detector = FailureDetector {
        detection_latency: latency,
        false_positive_rate: params.fp_rate.unwrap_or(level.fp_rate),
        false_negative_rate: params.fn_rate.unwrap_or(level.fn_rate),
    };
    Effective {
        factor: level.factor,
        // A perfect detector is provably byte-identical to no detector;
        // configure `None` so the clean level's cells are plain runs.
        detector: (!detector.is_perfect()).then_some(detector),
        sigma: params.noise.unwrap_or(level.sigma),
    }
}

/// Builds one level's fault schedule: the shared kill-restore outage
/// (kill at 25% of the measured span, restore 35% later — the failures
/// family's timing) plus the level's straggler window (degrade 10% in,
/// recover 40% of the span later). Mild slows a single node; moderate
/// and severe gray out a whole rack, staggered inside one scheduling
/// interval. The clean level schedules nothing.
fn level_plan(level: &Level, plan_seed: u64, sim: &SimConfig) -> FaultPlan {
    if level.factor <= 1.0 {
        return FaultPlan::none();
    }
    let measured = sim.horizon - sim.warmup;
    let kill_at = SimTime::ZERO + sim.warmup + measured.mul_f64(0.25);
    let downtime = measured.mul_f64(0.35);
    let degrade_at = SimTime::ZERO + sim.warmup + measured.mul_f64(0.10);
    let window = measured.mul_f64(0.40);
    let straggler = if level.name == "mild" {
        FaultPlan::slow_node(VICTIM_POOL, plan_seed, degrade_at, window, level.factor)
    } else {
        FaultPlan::gray_rack(
            FAIL_NODE_COUNT,
            RACK_SIZE,
            plan_seed,
            degrade_at,
            sim.scheduler_interval.mul_f64(0.2),
            window,
            level.factor,
        )
    };
    let outage = FaultPlan::kill_restore(VICTIM_POOL, plan_seed, kill_at, downtime);
    FaultPlan::new(
        straggler
            .events()
            .iter()
            .chain(outage.events())
            .cloned()
            .collect(),
    )
}

/// The default technique set per level: the blind baseline, the reactive
/// evacuator, the perfect-information bound, and PCS fed the level's
/// noise (σ = 0 selects plain `pcs`, so the clean cell is the standard
/// technique).
fn level_set(sigma: f64, smoke: bool) -> Vec<TechniqueRef> {
    let pcs = if sigma > 0.0 {
        techniques::pcs_noisy(sigma)
    } else {
        techniques::pcs()
    };
    if smoke {
        vec![techniques::basic(), techniques::ll(), pcs]
    } else {
        vec![
            techniques::basic(),
            techniques::ll(),
            techniques::oracle(),
            pcs,
        ]
    }
}

/// The imperfect-information metrics appended to every cell.
fn imperfect_metrics(report: &RunReport) -> Vec<(String, Json)> {
    let f = &report.faults;
    vec![
        kv("kills", f.stats.kills),
        kv("degrades", f.stats.degrades),
        kv("recovers", f.stats.recovers),
        kv("requests_lost", f.stats.requests_lost),
        kv("failed_over", f.stats.failed_over),
        kv("p99_degraded_ms", f.degraded.p99 * 1e3),
    ]
}

/// True when the PCS family's tail never improves as the world worsens
/// (each level's P99 at least 95% of the previous level's — the pinned
/// tolerance absorbs benign noise without hiding a real regression).
fn monotone_within_tolerance(curve: &[f64]) -> bool {
    curve.windows(2).all(|w| w[1] >= w[0] * 0.95)
}

/// Cross-cell reduction: the per-technique degradation curve (level →
/// tail, requests lost) plus the headline booleans.
fn imperfect_summary(cells: &[CellOutcome]) -> Vec<(String, Json)> {
    let mut rows = Vec::new();
    let mut pcs_curve = Vec::new();
    let mut moderate: Vec<(String, f64, f64)> = Vec::new();
    for cell in cells {
        let Some(technique) = cell.value("technique").and_then(Json::as_str) else {
            continue;
        };
        let technique = technique.to_string();
        let level = cell
            .value("level")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let p99 = cell.value_f64("p99_component_ms").unwrap_or(f64::NAN);
        let lost = cell.value_f64("requests_lost").unwrap_or(f64::NAN);
        if technique == "PCS" || technique.starts_with("PCS-N") {
            pcs_curve.push(p99);
        }
        if level == "moderate" {
            moderate.push((technique.clone(), p99, lost));
        }
        rows.push(Json::object(vec![
            kv("level", level),
            kv("vs_technique", technique),
            kv("p99_component_ms", p99),
            kv("requests_lost", lost),
        ]));
    }
    // The headline comparison: at the moderate level, does PCS with noisy
    // inputs still beat the reactive and blind baselines on both axes?
    let at = |prefix: &str| {
        moderate
            .iter()
            .find(|(t, _, _)| t == prefix || t.starts_with(&format!("{prefix}-N")))
    };
    let beats = |baseline: &str| -> Json {
        match (at("PCS"), moderate.iter().find(|(t, _, _)| t == baseline)) {
            (Some((_, pcs_p99, pcs_lost)), Some((_, base_p99, base_lost))) => {
                Json::from(pcs_p99 <= base_p99 && pcs_lost <= base_lost)
            }
            _ => Json::Null,
        }
    };
    vec![
        (
            "pcs_monotone_tail".to_string(),
            Json::from(monotone_within_tolerance(&pcs_curve)),
        ),
        ("pcs_beats_ll_at_moderate".to_string(), beats("LL")),
        ("pcs_beats_basic_at_moderate".to_string(), beats("Basic")),
        ("degradation_by_cell".to_string(), Json::Array(rows)),
    ]
}

/// The grid config of one `pcs bench` `imperfect`-section run: the
/// scenario's own prologue (doubled horizon, and the smoke grid's denser
/// component pool at 100 req/s), shared here so the bench measures
/// exactly this scenario's cells.
pub(crate) fn bench_grid(params: &SweepParams) -> fig6::Fig6Config {
    let mut cfg = base_grid(params, &[100.0]);
    // Mitigation needs room to pay off inside the straggler window:
    // double the family default horizon (the `--smoke` shrink is applied
    // first, so smoke runs stay CI-sized), like the rolling-restart
    // family does.
    cfg.horizon_scale *= if params.smoke { 3.0 } else { 2.0 };
    if params.smoke {
        // The smoke shrink would defeat the comparison itself: at 80
        // req/s the gray rack never saturates, and on the 10-component
        // grid LL's one-migration-per-interval handicap vanishes. Keep
        // the full grid's rate and a denser component pool (an explicit
        // `--rates` still wins).
        if params.rates.is_none() {
            cfg.rates = vec![100.0];
        }
        cfg.search_vm_budget = 24;
    }
    cfg
}

/// The simulation config (and PCS prediction-noise σ) of one bench cell:
/// the named level's fault schedule and detector exactly as the grid
/// builds them, so the bench replays an identical clean vs
/// degraded-input pair per technique.
pub(crate) fn bench_cell_config(
    cfg: &fig6::Fig6Config,
    rate: f64,
    level_name: &str,
) -> (SimConfig, f64) {
    let (level_index, level) = LEVELS
        .iter()
        .enumerate()
        .find(|(_, l)| l.name == level_name)
        .expect("known imperfection level");
    let plan_seed = seed::mix(fig6::rate_seed(cfg.seed, rate), level_index as u64);
    let mut sim = fig6::cell_config(cfg, rate);
    sim.node_count = FAIL_NODE_COUNT;
    let eff = effective(level, &SweepParams::default(), sim.horizon - sim.warmup);
    sim.faults = level_plan(level, plan_seed, &sim);
    sim.detector = eff.detector;
    (sim, eff.sigma)
}

/// The scenario registration.
pub struct ImperfectScenario;

impl Scenario for ImperfectScenario {
    fn name(&self) -> &'static str {
        "imperfect"
    }

    fn description(&self) -> &'static str {
        "Graceful degradation under stragglers, noisy detection and prediction error"
    }

    fn default_seed(&self) -> u64 {
        62024
    }

    fn techniques_selectable(&self) -> bool {
        true
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let cfg = bench_grid(params);
        let models = train_models(&cfg);
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            for (level_index, level) in LEVELS.iter().enumerate() {
                if params.smoke && !SMOKE_LEVELS.contains(&level.name) {
                    continue;
                }
                // One outage + straggler window per (rate, level), shared
                // by every technique: the comparison replays an identical
                // trace, so only each technique's reaction differs. The
                // seed mixes the level's *global* index, so a smoke run's
                // moderate level replays the full grid's geometry.
                let plan_seed = seed::mix(fig6::rate_seed(cfg.seed, rate), level_index as u64);
                let mut sim_probe = fig6::cell_config(&cfg, rate);
                sim_probe.node_count = FAIL_NODE_COUNT;
                let eff = effective(level, params, sim_probe.horizon - sim_probe.warmup);
                let schedule = level_plan(level, plan_seed, &sim_probe);
                let victims: Vec<Json> = schedule
                    .events()
                    .iter()
                    .filter(|e| e.kind == FaultKind::Kill)
                    .map(|e| Json::from(e.node.index() as u64))
                    .collect();
                let detector_params: Vec<(String, Json)> = vec![
                    kv(
                        "detector_latency_secs",
                        eff.detector
                            .map(|d| d.detection_latency.as_secs_f64())
                            .unwrap_or(0.0),
                    ),
                    kv(
                        "fp_rate",
                        eff.detector.map(|d| d.false_positive_rate).unwrap_or(0.0),
                    ),
                    kv(
                        "fn_rate",
                        eff.detector.map(|d| d.false_negative_rate).unwrap_or(0.0),
                    ),
                ];
                let techniques = techniques::resolve(
                    params.techniques.as_deref(),
                    level_set(eff.sigma, params.smoke),
                );
                for technique in &techniques {
                    let models = models.clone();
                    let cfg = cfg.clone();
                    let technique = technique.clone();
                    let schedule = schedule.clone();
                    let detector = eff.detector;
                    let mut cell_params = vec![
                        kv("rate", rate),
                        kv("level", level.name.to_string()),
                        kv("technique", technique.name()),
                        kv("straggler_factor", eff.factor),
                        kv("noise_sigma", eff.sigma),
                    ];
                    cell_params.extend(detector_params.iter().cloned());
                    cell_params.push(("victims".to_string(), Json::Array(victims.clone())));
                    cells.push(CellPlan {
                        label: format!("{} @ {rate} req/s {}", technique.name(), level.name),
                        params: cell_params,
                        // Runner seed unused: techniques at one (rate,
                        // level) replay the same trace and plan.
                        run: Box::new(move |_cell_seed| {
                            let mut sim_config = fig6::cell_config(&cfg, rate);
                            sim_config.node_count = FAIL_NODE_COUNT;
                            sim_config.faults = schedule.clone();
                            sim_config.detector = detector;
                            let report = fig6::run_cell_with_epsilon(
                                &sim_config,
                                technique.as_ref(),
                                &models,
                                cfg.epsilon_secs,
                            );
                            let mut metrics = report_metrics(&report);
                            metrics.extend(imperfect_metrics(&report));
                            CellResult { metrics }
                        }),
                    });
                }
            }
        }
        SweepPlan {
            cells,
            summarize: Some(Box::new(imperfect_summary)),
            notes: vec![
                format!(
                    "6-node cluster; every non-clean level replays the failures-family \
                     kill-restore outage plus a straggler window (degrade 10% into the \
                     measured span for 40% of it; mild = one slow node, moderate/severe = \
                     a {RACK_SIZE}-node gray rack)"
                ),
                "the PCS cell at each level runs pcs-n<sigma> (seeded mean-one log-normal \
                 noise on its demand estimates); sigma 0 is byte-identical to plain pcs"
                    .to_string(),
                "--detector-latency/--fp-rate/--fn-rate/--noise pin one dial across all \
                 levels to isolate the remaining axes"
                    .to_string(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_monotone_in_every_dial() {
        for pair in LEVELS.windows(2) {
            assert!(pair[1].factor >= pair[0].factor);
            assert!(pair[1].latency_frac >= pair[0].latency_frac);
            assert!(pair[1].fp_rate >= pair[0].fp_rate);
            assert!(pair[1].fn_rate >= pair[0].fn_rate);
            assert!(pair[1].sigma >= pair[0].sigma);
        }
        assert!(LEVELS[0].factor == 1.0 && LEVELS[0].sigma == 0.0);
    }

    #[test]
    fn clean_level_configures_nothing() {
        let params = SweepParams::default();
        let eff = effective(&LEVELS[0], &params, SimDuration::from_secs(50));
        assert_eq!(eff.detector, None);
        assert_eq!(eff.sigma, 0.0);
        let probe = SimConfig::paper_like(crate::experiments::fig6::topology(8), 100.0, 7);
        assert!(level_plan(&LEVELS[0], 1, &probe).is_empty());
        // Non-clean levels schedule both the outage and the stragglers.
        let plan = level_plan(&LEVELS[2], 1, &probe);
        let kills = plan
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::Kill)
            .count();
        let degrades = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Degrade { .. }))
            .count();
        assert_eq!(kills, 1);
        assert_eq!(degrades, RACK_SIZE);
    }

    #[test]
    fn cli_flags_pin_a_dial_across_levels() {
        let params = SweepParams {
            fp_rate: Some(0.0),
            fn_rate: Some(0.0),
            detector_latency_secs: Some(1.5),
            noise: Some(0.1),
            ..SweepParams::default()
        };
        for level in &LEVELS {
            let eff = effective(level, &params, SimDuration::from_secs(50));
            let d = eff.detector.expect("1.5 s latency keeps a detector");
            assert_eq!(d.detection_latency, SimDuration::from_secs_f64(1.5));
            assert_eq!(d.false_positive_rate, 0.0);
            assert_eq!(eff.sigma, 0.1);
        }
    }

    #[test]
    fn monotone_tolerance_allows_small_dips_only() {
        assert!(monotone_within_tolerance(&[1.0, 1.5, 1.45, 2.0]));
        assert!(!monotone_within_tolerance(&[1.0, 1.5, 0.9]));
        assert!(monotone_within_tolerance(&[]));
    }

    #[test]
    fn summary_reports_curve_and_booleans() {
        let mk = |level: &str, technique: &str, p99: f64, lost: f64| CellOutcome {
            label: format!("{technique} {level}"),
            params: vec![kv("level", level.to_string()), kv("technique", technique)],
            metrics: vec![kv("p99_component_ms", p99), kv("requests_lost", lost)],
        };
        let cells = vec![
            mk("clean", "Basic", 5.0, 0.0),
            mk("clean", "LL", 4.0, 0.0),
            mk("clean", "PCS", 2.0, 0.0),
            mk("moderate", "Basic", 50.0, 40.0),
            mk("moderate", "LL", 20.0, 25.0),
            mk("moderate", "PCS-N0.75", 8.0, 10.0),
        ];
        let summary = imperfect_summary(&cells);
        assert_eq!(summary[0], ("pcs_monotone_tail".into(), Json::from(true)));
        assert_eq!(
            summary[1],
            ("pcs_beats_ll_at_moderate".into(), Json::from(true))
        );
        assert_eq!(
            summary[2],
            ("pcs_beats_basic_at_moderate".into(), Json::from(true))
        );
        let Json::Array(rows) = &summary[3].1 else {
            panic!("rows");
        };
        assert_eq!(rows.len(), 6);
    }
}
