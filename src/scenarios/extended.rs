//! New scenarios beyond the paper's evaluation, exercising the widened
//! simulation layer: diurnally modulated arrivals, heterogeneous node
//! capacities, and bursty Markov-modulated (MMPP) arrivals. All produce
//! byte-identical JSON reports across repeated runs and across thread
//! counts at a fixed seed (no wall-clock metrics; cells are pure
//! functions of their seeds).
//!
//! Each scenario sweeps a default technique set from the shared registry
//! ([`crate::techniques`]); `--techniques` swaps in any other registered
//! set — `pcs run --scenario hetero --techniques basic,cap,pcs` compares
//! the capacity-aware placement baseline, for example.

use super::{base_grid, kv, pcs_reduction_summary, report_metrics, technique_grid, train_models};
use crate::experiments::fig6;
use crate::techniques;
use pcs_harness::{CellPlan, CellResult, Scenario, SweepParams, SweepPlan};
use pcs_types::{NodeCapacity, SimDuration};
use pcs_workloads::ArrivalPattern;

/// Diurnal load: the paper sweeps fixed rates "to compare the latency
/// reduction techniques under online services' diurnal variation in
/// load"; this scenario makes the variation explicit with a
/// non-homogeneous Poisson process whose rate swings ±70% around the base
/// over a time-compressed day (period 20 s against the 60 s horizon, so a
/// run sees three full cycles including two rush-hour crests).
pub struct DiurnalScenario;

/// The modulation depth of the diurnal sweep.
const DIURNAL_AMPLITUDE: f64 = 0.7;

/// The time-compressed day length.
const DIURNAL_PERIOD_SECS: u64 = 20;

impl Scenario for DiurnalScenario {
    fn name(&self) -> &'static str {
        "diurnal"
    }

    fn description(&self) -> &'static str {
        "Techniques under sinusoidally modulated (diurnal) arrivals"
    }

    fn default_seed(&self) -> u64 {
        62016
    }

    fn techniques_selectable(&self) -> bool {
        true
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let mut cfg = base_grid(params, &[100.0, 250.0]);
        cfg.techniques = technique_grid(
            params,
            techniques::extended_set(),
            techniques::extended_smoke_set(),
        );
        let models = train_models(&cfg);
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            for technique in &cfg.techniques {
                let models = models.clone();
                let cfg = cfg.clone();
                let technique = technique.clone();
                cells.push(CellPlan {
                    label: format!("{} @ ~{rate} req/s diurnal", technique.name()),
                    params: vec![
                        kv("rate", rate),
                        kv("technique", technique.name()),
                        kv("amplitude", DIURNAL_AMPLITUDE),
                        kv("period_s", DIURNAL_PERIOD_SECS),
                    ],
                    // Runner seed unused: techniques at one base rate
                    // replay the same trace (rate-keyed SplitMix64 seed).
                    run: Box::new(move |_cell_seed| {
                        let mut sim_config = fig6::cell_config(&cfg, rate);
                        sim_config.arrival_pattern = ArrivalPattern::Diurnal {
                            amplitude: DIURNAL_AMPLITUDE,
                            period: SimDuration::from_secs(DIURNAL_PERIOD_SECS),
                        };
                        let report = fig6::run_cell_with_epsilon(
                            &sim_config,
                            technique.as_ref(),
                            &models,
                            cfg.epsilon_secs,
                        );
                        CellResult {
                            metrics: report_metrics(&report),
                        }
                    }),
                });
            }
        }
        SweepPlan {
            cells,
            summarize: Some(Box::new(pcs_reduction_summary)),
            notes: vec![format!(
                "rate(t) = base * (1 + {DIURNAL_AMPLITUDE} sin(2 pi t / {DIURNAL_PERIOD_SECS} s)); crests push the queueing term far past the fixed-rate setting"
            )],
        }
    }
}

/// Heterogeneous cluster: half the nodes are a generation weaker (half
/// the cores and bandwidths of the paper's Xeon E5645 testbed boxes), so
/// the same absolute batch demand contends twice as hard there. PCS's
/// per-node contention normalisation sees this directly; the blind
/// techniques cannot steer work away from the weak half. The registry's
/// `cap` technique provisions proportionally to capacity instead
/// (`--techniques basic,cap,pcs`).
pub struct HeteroScenario;

/// The weaker half's capacity: half a Xeon E5645 box in every dimension.
const WEAK_NODE: NodeCapacity = NodeCapacity {
    cores: 6.0,
    disk_mbps: 100.0,
    net_mbps: 62.5,
};

/// Alternating strong/weak capacities for an `n`-node cluster.
pub fn mixed_capacities(n: usize) -> Vec<NodeCapacity> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                NodeCapacity::XEON_E5645
            } else {
                WEAK_NODE
            }
        })
        .collect()
}

impl Scenario for HeteroScenario {
    fn name(&self) -> &'static str {
        "hetero"
    }

    fn description(&self) -> &'static str {
        "Techniques on a mixed-capacity cluster (alternating full/half-size nodes)"
    }

    fn default_seed(&self) -> u64 {
        62017
    }

    fn techniques_selectable(&self) -> bool {
        true
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let mut cfg = base_grid(params, &[100.0, 300.0]);
        cfg.techniques = technique_grid(
            params,
            techniques::extended_set(),
            techniques::extended_smoke_set(),
        );
        let models = train_models(&cfg);
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            for technique in &cfg.techniques {
                let models = models.clone();
                let cfg = cfg.clone();
                let technique = technique.clone();
                cells.push(CellPlan {
                    label: format!("{} @ {rate} req/s mixed cluster", technique.name()),
                    params: vec![
                        kv("rate", rate),
                        kv("technique", technique.name()),
                        kv("weak_node_fraction", 0.5),
                    ],
                    // Runner seed unused: same-trace comparison per rate.
                    run: Box::new(move |_cell_seed| {
                        let mut sim_config = fig6::cell_config(&cfg, rate);
                        sim_config.node_capacities = Some(mixed_capacities(sim_config.node_count));
                        let report = fig6::run_cell_with_epsilon(
                            &sim_config,
                            technique.as_ref(),
                            &models,
                            cfg.epsilon_secs,
                        );
                        CellResult {
                            metrics: report_metrics(&report),
                        }
                    }),
                });
            }
        }
        SweepPlan {
            cells,
            summarize: Some(Box::new(pcs_reduction_summary)),
            notes: vec![
                "odd-indexed nodes have half the cores/disk/net of the paper's Xeon E5645 boxes; the `cap` technique provisions proportionally to capacity"
                    .to_string(),
            ],
        }
    }
}

/// Bursty arrivals: a two-state Markov-modulated Poisson process
/// alternating between a calm phase at a quarter of the base rate and a
/// bursty phase at 1.75× (long-run mean = base). Fixed-rate sweeps hide
/// exactly the regime where migration matters most — the onset of a
/// burst, when queues build before any monitor window reflects it — so
/// this scenario also defaults to sweeping the reactive (`ll`) and
/// perfect-monitoring (`oracle`) registry techniques alongside the
/// paper's families.
pub struct MmppScenario;

/// Calm-state rate multiplier.
const MMPP_LOW: f64 = 0.25;

/// Burst-state rate multiplier (`low + high = 2` keeps the long-run mean
/// at the base rate).
const MMPP_HIGH: f64 = 1.75;

/// Mean dwell time in each state, time-compressed like the rest of the
/// paper-like setting: ~15 phase switches per 60 s horizon.
const MMPP_DWELL_SECS: u64 = 4;

/// The MMPP sweep's default technique set: the extended comparison
/// families plus the reactive and oracle baselines.
fn mmpp_set() -> Vec<techniques::TechniqueRef> {
    vec![
        techniques::basic(),
        techniques::red(3),
        techniques::ri(90.0),
        techniques::ll(),
        techniques::oracle(),
        techniques::pcs(),
    ]
}

/// The MMPP `--smoke` shrink.
fn mmpp_smoke_set() -> Vec<techniques::TechniqueRef> {
    vec![techniques::basic(), techniques::ll(), techniques::pcs()]
}

impl Scenario for MmppScenario {
    fn name(&self) -> &'static str {
        "mmpp"
    }

    fn description(&self) -> &'static str {
        "Techniques under bursty two-state Markov-modulated Poisson arrivals"
    }

    fn default_seed(&self) -> u64 {
        62018
    }

    fn techniques_selectable(&self) -> bool {
        true
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let mut cfg = base_grid(params, &[100.0, 250.0]);
        cfg.techniques = technique_grid(params, mmpp_set(), mmpp_smoke_set());
        let models = train_models(&cfg);
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            for technique in &cfg.techniques {
                let models = models.clone();
                let cfg = cfg.clone();
                let technique = technique.clone();
                cells.push(CellPlan {
                    label: format!("{} @ ~{rate} req/s mmpp", technique.name()),
                    params: vec![
                        kv("rate", rate),
                        kv("technique", technique.name()),
                        kv("low_multiplier", MMPP_LOW),
                        kv("high_multiplier", MMPP_HIGH),
                        kv("mean_dwell_s", MMPP_DWELL_SECS),
                    ],
                    // Runner seed unused: same-trace comparison per rate.
                    run: Box::new(move |_cell_seed| {
                        let mut sim_config = fig6::cell_config(&cfg, rate);
                        sim_config.arrival_pattern = ArrivalPattern::Mmpp {
                            low: MMPP_LOW,
                            high: MMPP_HIGH,
                            mean_dwell: SimDuration::from_secs(MMPP_DWELL_SECS),
                        };
                        let report = fig6::run_cell_with_epsilon(
                            &sim_config,
                            technique.as_ref(),
                            &models,
                            cfg.epsilon_secs,
                        );
                        CellResult {
                            metrics: report_metrics(&report),
                        }
                    }),
                });
            }
        }
        SweepPlan {
            cells,
            summarize: Some(Box::new(pcs_reduction_summary)),
            notes: vec![format!(
                "two-state MMPP: calm {MMPP_LOW}x / burst {MMPP_HIGH}x the base rate, mean dwell {MMPP_DWELL_SECS} s per state (long-run mean = base)"
            )],
        }
    }
}
