//! New scenarios beyond the paper's evaluation, exercising the widened
//! simulation layer: diurnally modulated arrivals and heterogeneous node
//! capacities. Both produce byte-identical JSON reports across repeated
//! runs and across thread counts at a fixed seed (no wall-clock metrics;
//! cells are pure functions of their seeds).

use super::{base_grid, kv, pcs_reduction_summary, report_metrics, train_models};
use crate::experiments::fig6::{self, Technique};
use pcs_harness::{CellPlan, CellResult, Scenario, SweepParams, SweepPlan};
use pcs_types::{NodeCapacity, SimDuration};
use pcs_workloads::ArrivalPattern;

/// The techniques the extended comparisons run (one representative per
/// family; `--smoke` drops to Basic vs PCS).
fn extended_techniques(smoke: bool) -> Vec<Technique> {
    if smoke {
        vec![Technique::Basic, Technique::Pcs]
    } else {
        vec![
            Technique::Basic,
            Technique::Red(3),
            Technique::Ri(0.90),
            Technique::Pcs,
        ]
    }
}

/// Diurnal load: the paper sweeps fixed rates "to compare the latency
/// reduction techniques under online services' diurnal variation in
/// load"; this scenario makes the variation explicit with a
/// non-homogeneous Poisson process whose rate swings ±70% around the base
/// over a time-compressed day (period 20 s against the 60 s horizon, so a
/// run sees three full cycles including two rush-hour crests).
pub struct DiurnalScenario;

/// The modulation depth of the diurnal sweep.
const DIURNAL_AMPLITUDE: f64 = 0.7;

/// The time-compressed day length.
const DIURNAL_PERIOD_SECS: u64 = 20;

impl Scenario for DiurnalScenario {
    fn name(&self) -> &'static str {
        "diurnal"
    }

    fn description(&self) -> &'static str {
        "Techniques under sinusoidally modulated (diurnal) arrivals"
    }

    fn default_seed(&self) -> u64 {
        62016
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let mut cfg = base_grid(params, &[100.0, 250.0]);
        cfg.techniques = extended_techniques(params.smoke);
        let models = train_models(&cfg);
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            for &technique in &cfg.techniques {
                let models = models.clone();
                let cfg = cfg.clone();
                cells.push(CellPlan {
                    label: format!("{} @ ~{rate} req/s diurnal", technique.name()),
                    params: vec![
                        kv("rate", rate),
                        kv("technique", technique.name()),
                        kv("amplitude", DIURNAL_AMPLITUDE),
                        kv("period_s", DIURNAL_PERIOD_SECS),
                    ],
                    // Runner seed unused: techniques at one base rate
                    // replay the same trace (rate-keyed SplitMix64 seed).
                    run: Box::new(move |_cell_seed| {
                        let mut sim_config = fig6::cell_config(&cfg, rate);
                        sim_config.arrival_pattern = ArrivalPattern::Diurnal {
                            amplitude: DIURNAL_AMPLITUDE,
                            period: SimDuration::from_secs(DIURNAL_PERIOD_SECS),
                        };
                        let report = fig6::run_cell_with_epsilon(
                            &sim_config,
                            technique,
                            &models,
                            cfg.epsilon_secs,
                        );
                        CellResult {
                            metrics: report_metrics(&report),
                        }
                    }),
                });
            }
        }
        SweepPlan {
            cells,
            summarize: Some(Box::new(pcs_reduction_summary)),
            notes: vec![format!(
                "rate(t) = base * (1 + {DIURNAL_AMPLITUDE} sin(2 pi t / {DIURNAL_PERIOD_SECS} s)); crests push the queueing term far past the fixed-rate setting"
            )],
        }
    }
}

/// Heterogeneous cluster: half the nodes are a generation weaker (half
/// the cores and bandwidths of the paper's Xeon E5645 testbed boxes), so
/// the same absolute batch demand contends twice as hard there. PCS's
/// per-node contention normalisation sees this directly; the blind
/// techniques cannot steer work away from the weak half.
pub struct HeteroScenario;

/// The weaker half's capacity: half a Xeon E5645 box in every dimension.
const WEAK_NODE: NodeCapacity = NodeCapacity {
    cores: 6.0,
    disk_mbps: 100.0,
    net_mbps: 62.5,
};

/// Alternating strong/weak capacities for an `n`-node cluster.
pub fn mixed_capacities(n: usize) -> Vec<NodeCapacity> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                NodeCapacity::XEON_E5645
            } else {
                WEAK_NODE
            }
        })
        .collect()
}

impl Scenario for HeteroScenario {
    fn name(&self) -> &'static str {
        "hetero"
    }

    fn description(&self) -> &'static str {
        "Techniques on a mixed-capacity cluster (alternating full/half-size nodes)"
    }

    fn default_seed(&self) -> u64 {
        62017
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let mut cfg = base_grid(params, &[100.0, 300.0]);
        cfg.techniques = extended_techniques(params.smoke);
        let models = train_models(&cfg);
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            for &technique in &cfg.techniques {
                let models = models.clone();
                let cfg = cfg.clone();
                cells.push(CellPlan {
                    label: format!("{} @ {rate} req/s mixed cluster", technique.name()),
                    params: vec![
                        kv("rate", rate),
                        kv("technique", technique.name()),
                        kv("weak_node_fraction", 0.5),
                    ],
                    // Runner seed unused: same-trace comparison per rate.
                    run: Box::new(move |_cell_seed| {
                        let mut sim_config = fig6::cell_config(&cfg, rate);
                        sim_config.node_capacities = Some(mixed_capacities(sim_config.node_count));
                        let report = fig6::run_cell_with_epsilon(
                            &sim_config,
                            technique,
                            &models,
                            cfg.epsilon_secs,
                        );
                        CellResult {
                            metrics: report_metrics(&report),
                        }
                    }),
                });
            }
        }
        SweepPlan {
            cells,
            summarize: Some(Box::new(pcs_reduction_summary)),
            notes: vec![
                "odd-indexed nodes have half the cores/disk/net of the paper's Xeon E5645 boxes"
                    .to_string(),
            ],
        }
    }
}
