//! Scenario registrations for the design-choice ablations.

use super::{base_grid, kv, report_metrics, train_models};
use crate::controller::PcsController;
use crate::experiments::{fig6, fig7};
use pcs_core::{ClassModelSet, ComponentScheduler, MatrixConfig, SchedulerConfig};
use pcs_harness::{CellPlan, CellResult, Scenario, SweepParams, SweepPlan};
use pcs_sim::{BasicPolicy, Simulation};
use pcs_types::SimDuration;
use std::sync::Arc;

/// Builds one PCS cell with a customised controller: shared plumbing for
/// the simulation-backed ablations (same trace per rate via
/// [`fig6::rate_seed`], controller knobs varied per cell). `models` is
/// trained once per plan and shared by every cell.
#[allow(clippy::too_many_arguments)]
fn pcs_cell(
    cfg: &fig6::Fig6Config,
    models: &Arc<ClassModelSet>,
    rate: f64,
    label: String,
    params: Vec<(String, pcs_harness::Json)>,
    scheduler: SchedulerConfig,
    matrix: MatrixConfig,
    scv_override: Option<f64>,
    interval: Option<SimDuration>,
) -> CellPlan {
    let models = models.clone();
    let cfg = cfg.clone();
    CellPlan {
        label,
        params,
        // Runner seed unused: cells at one rate share the rate-keyed seed.
        run: Box::new(move |_cell_seed| {
            let mut sim_config = fig6::cell_config(&cfg, rate);
            if let Some(interval) = interval {
                sim_config.scheduler_interval = interval;
            }
            let mut controller = PcsController::new((*models).clone(), scheduler, matrix);
            if let Some(scv) = scv_override {
                controller = controller.with_scv_override(scv);
            }
            let report =
                Simulation::new(sim_config, Box::new(BasicPolicy), Box::new(controller)).run();
            CellResult {
                metrics: report_metrics(&report),
            }
        }),
    }
}

fn default_scheduler(epsilon_secs: f64) -> SchedulerConfig {
    SchedulerConfig {
        epsilon_secs,
        max_migrations: None,
        full_rebuild: false,
    }
}

/// Ablation: the migration threshold ε (paper §VI-C picks 5 ms; too high
/// blocks straggler evacuation, too low admits noise-driven churn).
pub struct ThresholdScenario;

impl Scenario for ThresholdScenario {
    fn name(&self) -> &'static str {
        "ablation-threshold"
    }

    fn description(&self) -> &'static str {
        "Ablation: migration threshold epsilon sweep for PCS"
    }

    fn default_seed(&self) -> u64 {
        62015
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let cfg = base_grid(params, &[50.0, 500.0]);
        let models = train_models(&cfg);
        let epsilons: &[f64] = if params.smoke {
            &[1e-6, 1e-3]
        } else {
            &[0.0, 1e-6, 1e-5, 1e-4, 1e-3, 5e-3]
        };
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            for &eps in epsilons {
                cells.push(pcs_cell(
                    &cfg,
                    &models,
                    rate,
                    format!("eps={eps} @ {rate} req/s"),
                    vec![kv("rate", rate), kv("epsilon_ms", eps * 1e3)],
                    default_scheduler(eps),
                    MatrixConfig::default(),
                    None,
                    None,
                ));
            }
        }
        SweepPlan {
            cells,
            summarize: None,
            notes: vec!["paper: eps = 5 ms against 3 s Storm redeployments".to_string()],
        }
    }
}

/// Ablation: Algorithm 1's tie tolerance / self-gain tie-break.
pub struct TiebreakScenario;

impl Scenario for TiebreakScenario {
    fn name(&self) -> &'static str {
        "ablation-tiebreak"
    }

    fn description(&self) -> &'static str {
        "Ablation: Algorithm 1 tie tolerance / self-gain tie-break sweep"
    }

    fn default_seed(&self) -> u64 {
        62015
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let cfg = base_grid(params, &[50.0, 500.0]);
        let models = train_models(&cfg);
        let tolerances: &[f64] = if params.smoke {
            &[0.0, 0.25]
        } else {
            &[0.0, 0.1, 0.25, 0.5]
        };
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            for &tol in tolerances {
                cells.push(pcs_cell(
                    &cfg,
                    &models,
                    rate,
                    format!("tol={tol} @ {rate} req/s"),
                    vec![kv("rate", rate), kv("tie_tolerance", tol)],
                    default_scheduler(1e-6),
                    MatrixConfig {
                        tie_tolerance: tol,
                        ..MatrixConfig::default()
                    },
                    None,
                    None,
                ));
            }
        }
        SweepPlan {
            cells,
            summarize: None,
            notes: vec![
                "tolerance 0 leaves the self-gain rule inert; wider tolerances prefer true stragglers".to_string(),
            ],
        }
    }
}

/// Ablation: the Eq. 2 queueing term — M/G/1 with the observed SCV vs the
/// M/M/1 special case (SCV forced to 1).
pub struct QueueingScenario;

impl Scenario for QueueingScenario {
    fn name(&self) -> &'static str {
        "ablation-queueing"
    }

    fn description(&self) -> &'static str {
        "Ablation: M/G/1 (observed SCV) vs M/M/1 (SCV = 1) latency term"
    }

    fn default_seed(&self) -> u64 {
        62015
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let cfg = base_grid(params, &[50.0, 200.0, 500.0]);
        let models = train_models(&cfg);
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            for (label, scv_override) in [("M/G/1", None), ("M/M/1", Some(1.0))] {
                cells.push(pcs_cell(
                    &cfg,
                    &models,
                    rate,
                    format!("{label} @ {rate} req/s"),
                    vec![kv("rate", rate), kv("queue_model", label)],
                    default_scheduler(1e-6),
                    MatrixConfig::default(),
                    scv_override,
                    None,
                ));
            }
        }
        SweepPlan {
            cells,
            summarize: None,
            notes: vec![
                "paper Eq. 2 degenerates to M/M/1 when service times are exponential".to_string(),
            ],
        }
    }
}

/// Ablation: the scheduling interval — reaction speed vs scheduling work.
pub struct IntervalScenario;

impl Scenario for IntervalScenario {
    fn name(&self) -> &'static str {
        "ablation-interval"
    }

    fn description(&self) -> &'static str {
        "Ablation: scheduling-interval sweep for PCS"
    }

    fn default_seed(&self) -> u64 {
        62015
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let cfg = base_grid(params, &[200.0, 500.0]);
        let models = train_models(&cfg);
        let intervals_s: &[f64] = if params.smoke {
            &[2.0, 10.0]
        } else {
            &[1.0, 2.0, 5.0, 10.0, 20.0]
        };
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            for &interval in intervals_s {
                cells.push(pcs_cell(
                    &cfg,
                    &models,
                    rate,
                    format!("interval={interval}s @ {rate} req/s"),
                    vec![kv("rate", rate), kv("interval_s", interval)],
                    default_scheduler(1e-6),
                    MatrixConfig::default(),
                    None,
                    Some(SimDuration::from_secs_f64(interval)),
                ));
            }
        }
        SweepPlan {
            cells,
            summarize: None,
            notes: vec![
                "paper: 600 s interval against <= 3 s migrations; ratios preserved time-compressed"
                    .to_string(),
            ],
        }
    }
}

/// Ablation: Algorithm 2's incremental matrix maintenance vs a naïve full
/// rebuild after every accepted migration (wall-clock timings).
pub struct RebuildScenario;

impl Scenario for RebuildScenario {
    fn name(&self) -> &'static str {
        "ablation-rebuild"
    }

    fn description(&self) -> &'static str {
        "Ablation: Algorithm 2 incremental matrix update vs full rebuild (wall-clock)"
    }

    fn default_seed(&self) -> u64 {
        99
    }

    // Wall-clock metrics (like fig7): the CLI rejects `--observe` here
    // rather than let instrumentation perturb the timings.
    fn observe_supported(&self) -> bool {
        false
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let sizes: &[(usize, usize)] = if params.smoke {
            &[(40, 8)]
        } else {
            &[(40, 8), (80, 16), (160, 32)]
        };
        let mut cells = Vec::new();
        for &(m, k) in sizes {
            for (label, full_rebuild) in [("incremental", false), ("full rebuild", true)] {
                let seed = params.seed;
                cells.push(CellPlan {
                    label: format!("{label} at {m}x{k}"),
                    params: vec![kv("components", m), kv("nodes", k), kv("variant", label)],
                    // Both variants at a size share the same synthetic
                    // state, so decisions are comparable; the runner seed
                    // is unused for the same reason as the rate grids.
                    run: Box::new(move |_cell_seed| {
                        let models = fig7::synthetic_models();
                        // Cap migrations so the quadratic full-rebuild
                        // variant stays measurable at the larger sizes.
                        let scheduler = ComponentScheduler::new(SchedulerConfig {
                            epsilon_secs: 0.0001,
                            max_migrations: Some(40),
                            full_rebuild,
                        });
                        let inputs = fig7::synthetic_inputs(
                            m,
                            k,
                            pcs_harness::seed::mix(seed, (m as u64) << 16 | k as u64),
                        );
                        let outcome = scheduler.schedule(&inputs, &models, MatrixConfig::default());
                        CellResult {
                            metrics: vec![
                                kv("search_ms", outcome.search_time.as_secs_f64() * 1e3),
                                kv("migrations", outcome.decisions.len()),
                                kv("predicted_gain_ms", outcome.predicted_improvement() * 1e3),
                            ],
                        }
                    }),
                });
            }
        }
        SweepPlan {
            cells,
            summarize: None,
            notes: vec![
                "timings are wall-clock; incremental and full rebuild should accept near-identical migration sets".to_string(),
            ],
        }
    }
}
