//! Scenario registrations: every experiment reachable through the `pcs`
//! CLI.
//!
//! A scenario wraps one evaluation grid — which cells exist, how a cell
//! runs, how the finished grid reduces to summary numbers — behind the
//! [`pcs_harness::Scenario`] trait. The shared
//! [`pcs_harness::runner::run_sweep`] executes any of them work-stealing
//! in parallel with deterministic, index-addressed results, so a
//! registration here is all it takes to get `pcs run --scenario <name>`
//! with tables, JSON reports and `--smoke` CI coverage.
//!
//! | scenario | paper artefact / question |
//! |---|---|
//! | `fig5` | Figure 5 — prediction-error distribution |
//! | `fig6` | Figure 6 — six techniques × six arrival rates |
//! | `fig7` | Figure 7 — scheduler scalability (wall-clock) |
//! | `headline` | §VI-C headline reductions (fig6 grid, reduction view) |
//! | `ablation-threshold` | migration-threshold ε sweep |
//! | `ablation-tiebreak` | Algorithm 1 tie tolerance sweep |
//! | `ablation-queueing` | M/G/1 vs M/M/1 latency term |
//! | `ablation-interval` | scheduling-interval sweep |
//! | `ablation-rebuild` | Algorithm 2 incremental vs full rebuild |
//! | `diurnal` | techniques under sinusoidally modulated load |
//! | `hetero` | techniques on a mixed-capacity cluster |
//! | `mmpp` | techniques under bursty Markov-modulated arrivals |
//! | `failures` | techniques under node kill/restore faults |
//! | `failures-rolling` | techniques under a rolling-restart maintenance wave |
//! | `scale` | flat vs hierarchical PCS at 100/400/1000 nodes |
//! | `elastic` | autoscaling: node-hours at a fixed P99 SLO per technique |
//! | `imperfect` | graceful degradation under imperfect information |
//!
//! The comparison scenarios sweep the open technique registry
//! ([`crate::techniques`]); `--techniques <list>` overrides any of their
//! grids from the CLI.

pub mod ablations;
pub mod elastic;
pub mod extended;
pub mod failures;
pub mod figures;
pub mod imperfect;
pub mod scale;

use crate::controller::PcsController;
use crate::experiments::fig6::Fig6Config;
use crate::techniques::{self, TechniqueRef};
use pcs_core::ClassModelSet;
use pcs_harness::{CellOutcome, Json, Scenario, SweepParams};
use pcs_sim::RunReport;
use pcs_types::NodeCapacity;
use std::sync::Arc;

/// Every registered scenario, in display order.
pub fn registry() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(figures::Fig5Scenario),
        Box::new(figures::Fig6Scenario),
        Box::new(figures::Fig7Scenario),
        Box::new(figures::HeadlineScenario),
        Box::new(ablations::ThresholdScenario),
        Box::new(ablations::TiebreakScenario),
        Box::new(ablations::QueueingScenario),
        Box::new(ablations::IntervalScenario),
        Box::new(ablations::RebuildScenario),
        Box::new(extended::DiurnalScenario),
        Box::new(extended::HeteroScenario),
        Box::new(extended::MmppScenario),
        Box::new(failures::FailuresScenario),
        Box::new(failures::RollingRestartScenario),
        Box::new(scale::ScaleScenario),
        Box::new(elastic::ElasticScenario),
        Box::new(imperfect::ImperfectScenario),
    ]
}

/// Looks a scenario up by registry name.
pub fn find(name: &str) -> Option<Box<dyn Scenario>> {
    registry().into_iter().find(|s| s.name() == name)
}

/// A `(name, value)` metric/param pair.
pub(crate) fn kv(name: &str, value: impl Into<Json>) -> (String, Json) {
    (name.to_string(), value.into())
}

/// The standard per-cell metrics of a simulation run. Observe-on runs
/// append the `observe` section (timelines, attribution, time-series,
/// audits); observe-off metrics keep their historical bytes.
pub(crate) fn report_metrics(report: &RunReport) -> Vec<(String, Json)> {
    let mut metrics = vec![
        kv("p99_component_ms", report.component_p99_ms()),
        kv("mean_overall_ms", report.overall_mean_ms()),
        kv("requests_completed", report.stats.requests_completed),
        kv("executions", report.stats.executions),
        kv("wasted_executions", report.stats.wasted_executions),
        kv("reissues", report.stats.reissues),
        kv("migrations", report.stats.migrations),
    ];
    if let Some(obs) = &report.observe {
        metrics.push(("observe".to_string(), crate::trace::observe_json(obs)));
    }
    metrics
}

/// The shared grid defaults for simulation-backed scenarios: CLI params
/// applied over a [`Fig6Config`], with `--smoke` shrinking the searching
/// pool, the horizon and the rate grid to CI-sized budgets (an explicit
/// `--rates` still wins).
pub(crate) fn base_grid(params: &SweepParams, default_rates: &[f64]) -> Fig6Config {
    let mut cfg = Fig6Config {
        seed: params.seed,
        rates: default_rates.to_vec(),
        ..Fig6Config::default()
    };
    if params.smoke {
        cfg.search_vm_budget = 8;
        cfg.horizon_scale = 0.2;
        cfg.rates = vec![80.0];
    }
    if let Some(rates) = &params.rates {
        cfg.rates = rates.clone();
    }
    cfg.observe = params.observe;
    cfg
}

/// The technique set a sweep runs: the CLI's `--techniques` selection if
/// present (validated there), otherwise the scenario's full or `--smoke`
/// default from the shared registry sets.
pub(crate) fn technique_grid(
    params: &SweepParams,
    full: Vec<TechniqueRef>,
    smoke: Vec<TechniqueRef>,
) -> Vec<TechniqueRef> {
    let default_set = if params.smoke { smoke } else { full };
    techniques::resolve(params.techniques.as_deref(), default_set)
}

/// Trains the PCS class models for a grid's topology (shared by every
/// cell of a sweep, so this runs once in `plan`).
pub(crate) fn train_models(cfg: &Fig6Config) -> Arc<ClassModelSet> {
    let topology = crate::experiments::fig6::topology(cfg.search_vm_budget);
    Arc::new(
        PcsController::train_for(&topology, NodeCapacity::XEON_E5645, cfg.seed)
            .expect("profiling campaign trains"),
    )
}

/// The cross-cell reduction shared by the comparison scenarios: for every
/// non-PCS cell, PCS's latency reduction at the same rate, plus the mean
/// over the redundancy/reissue techniques (the paper's §VI-C headline; if
/// the grid has no RED/RI cells the mean falls back to all non-PCS
/// techniques).
pub(crate) fn pcs_reduction_summary(cells: &[CellOutcome]) -> Vec<(String, Json)> {
    let pcs_at = |rate: f64| {
        cells.iter().find(|c| {
            c.value("technique").and_then(Json::as_str) == Some("PCS")
                && c.value_f64("rate") == Some(rate)
        })
    };
    let mut rows = Vec::new();
    let mut headline_tail = Vec::new();
    let mut headline_overall = Vec::new();
    let mut fallback_tail = Vec::new();
    let mut fallback_overall = Vec::new();
    for cell in cells {
        let Some(technique) = cell.value("technique").and_then(Json::as_str) else {
            continue;
        };
        if technique == "PCS" {
            continue;
        }
        let technique = technique.to_string();
        let Some(rate) = cell.value_f64("rate") else {
            continue;
        };
        let Some(pcs) = pcs_at(rate) else { continue };
        // Mirror `fig6::headline`: a degenerate comparison cell (no
        // completed requests, so a zero or non-finite latency) contributes
        // nothing rather than a clamped near-infinite "reduction".
        let reduction = |metric: &str| -> Option<f64> {
            let other = cell.value_f64(metric)?;
            let pcs = pcs.value_f64(metric)?;
            (other > 0.0 && other.is_finite() && pcs.is_finite()).then_some(1.0 - pcs / other)
        };
        let tail = reduction("p99_component_ms");
        let overall = reduction("mean_overall_ms");
        if tail.is_none() && overall.is_none() {
            continue;
        }
        let is_headline = techniques::is_redundancy_or_reissue(&technique);
        if let Some(tail) = tail {
            if is_headline {
                headline_tail.push(tail);
            }
            fallback_tail.push(tail);
        }
        if let Some(overall) = overall {
            if is_headline {
                headline_overall.push(overall);
            }
            fallback_overall.push(overall);
        }
        let pct = |v: Option<f64>| v.map(|v| Json::Num(v * 100.0)).unwrap_or(Json::Null);
        rows.push(Json::object(vec![
            kv("rate", rate),
            kv("vs_technique", technique),
            ("tail_reduction_pct".to_string(), pct(tail)),
            ("overall_reduction_pct".to_string(), pct(overall)),
        ]));
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let (tail, overall) = if headline_tail.is_empty() {
        (mean(&fallback_tail), mean(&fallback_overall))
    } else {
        (mean(&headline_tail), mean(&headline_overall))
    };
    vec![
        kv("pcs_mean_tail_reduction_pct", tail * 100.0),
        kv("pcs_mean_overall_reduction_pct", overall * 100.0),
        ("pcs_reduction_per_cell".to_string(), Json::Array(rows)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 17);
        for name in &names {
            assert!(find(name).is_some(), "{name} must be findable");
            assert_eq!(names.iter().filter(|n| n == &name).count(), 1);
        }
        assert!(find("nope").is_none());
    }

    #[test]
    fn exactly_the_technique_sweeps_accept_technique_selection() {
        // The CLI uses this flag to reject `--techniques` on scenarios
        // whose plan would silently ignore it.
        let selectable: Vec<&str> = registry()
            .iter()
            .filter(|s| s.techniques_selectable())
            .map(|s| s.name())
            .collect();
        assert_eq!(
            selectable,
            vec![
                "fig6",
                "headline",
                "diurnal",
                "hetero",
                "mmpp",
                "failures",
                "failures-rolling",
                "scale",
                "elastic",
                "imperfect"
            ]
        );
    }

    #[test]
    fn reduction_summary_math() {
        let mk = |technique: &str, p99: f64, mean: f64| CellOutcome {
            label: technique.into(),
            params: vec![kv("rate", 100.0), kv("technique", technique)],
            metrics: vec![kv("p99_component_ms", p99), kv("mean_overall_ms", mean)],
        };
        let cells = vec![mk("RED-3", 40.0, 80.0), mk("PCS", 10.0, 20.0)];
        let summary = pcs_reduction_summary(&cells);
        assert_eq!(summary[0].0, "pcs_mean_tail_reduction_pct");
        assert!((summary[0].1.as_f64().unwrap() - 75.0).abs() < 1e-9);
        assert!((summary[1].1.as_f64().unwrap() - 75.0).abs() < 1e-9);
        // Basic-only grids fall back to the non-PCS mean.
        let cells = vec![mk("Basic", 20.0, 40.0), mk("PCS", 10.0, 20.0)];
        let summary = pcs_reduction_summary(&cells);
        assert!((summary[0].1.as_f64().unwrap() - 50.0).abs() < 1e-9);
        // A degenerate comparison cell (zero latency: nothing completed)
        // is skipped, like fig6::headline does, not clamped into a
        // near-infinite reduction.
        let cells = vec![mk("RED-3", 0.0, 0.0), mk("PCS", 10.0, 20.0)];
        let summary = pcs_reduction_summary(&cells);
        assert_eq!(summary[0].1.as_f64(), Some(0.0));
        assert_eq!(summary[1].1.as_f64(), Some(0.0));
        assert_eq!(summary[2].1, Json::Array(vec![]));
    }
}
