//! The `elastic` scenario family: autoscaler aggressiveness × traffic
//! shape, scored as node-hours at a fixed tail SLO.
//!
//! The paper's production pitch is not just a lower tail — it is running
//! the same SLO on *less* capacity. This family puts the deterministic
//! autoscaling subsystem ([`pcs_sim::autoscale`]) under time-varying
//! demand and asks, per technique: how many node-hours does the fleet
//! bill while the P99 component SLO holds? Scale-in only retires a node
//! once the scheduler hook has evacuated it, so the comparison doubles
//! as an elasticity test of the hooks themselves:
//!
//! * `basic` never migrates — drains never complete, so it pays the
//!   full fleet's node-hours no matter how idle the trough is;
//! * `ll` evacuates reactively, one component per scheduling interval —
//!   drains complete, slowly;
//! * `pcs` evacuates draining nodes in batches within one interval —
//!   the fleet tracks demand closely, which is the headline number:
//!   PCS holds the SLO on strictly fewer node-hours.
//!
//! Three aggressiveness presets (target utilisation × step × cooldown)
//! sweep the stability/cost trade; traffic is the diurnal sinusoid and
//! the bursty MMPP from the extended scenarios, both of which spend real
//! time below the mean where consolidation pays. Zero requests are lost
//! to scale-in by construction (queued work rides each migration), and
//! the summary pins that invariant.

use super::{base_grid, kv, report_metrics, technique_grid, train_models};
use crate::experiments::fig6;
use crate::techniques;
use pcs_harness::{CellOutcome, CellPlan, CellResult, Json, Scenario, SweepParams, SweepPlan};
use pcs_sim::{AutoscaleConfig, RunReport};
use pcs_types::SimDuration;
use pcs_workloads::ArrivalPattern;

/// Cluster size of the elastic sweep: twice the failures cluster, so
/// there is real capacity to shed — the fleet can halve and still hold
/// every component. Shared with the bench harness.
pub(crate) const ELASTIC_NODE_COUNT: usize = 12;

/// The floor of active nodes no preset drains below.
const ELASTIC_MIN_NODES: usize = 4;

/// Cold-start of a (re)joining node, in milliseconds: two monitor
/// windows of visible-but-warming delay before new capacity serves.
const ELASTIC_COLD_START_MS: f64 = 2000.0;

/// The fixed P99 component-latency SLO (milliseconds) every cell is
/// scored against — and the SLO the control loop itself defends.
pub(crate) const ELASTIC_SLO_P99_MS: f64 = 60.0;

/// Diurnal modulation depth (as in the `diurnal` scenario).
const DIURNAL_AMPLITUDE: f64 = 0.7;

/// The time-compressed day length of the diurnal traffic.
const DIURNAL_PERIOD_SECS: u64 = 20;

/// MMPP calm-state rate multiplier (as in the `mmpp` scenario).
const MMPP_LOW: f64 = 0.25;

/// MMPP burst-state rate multiplier.
const MMPP_HIGH: f64 = 1.75;

/// MMPP mean dwell time per state.
const MMPP_DWELL_SECS: u64 = 4;

/// One autoscaler aggressiveness preset: how hot the controller runs
/// the fleet, how many nodes move per action, and how long it waits
/// between actions.
struct Preset {
    name: &'static str,
    target_utilization: f64,
    step: usize,
    cooldown_secs: f64,
}

/// The aggressiveness grid: `gentle` consolidates cautiously (cool
/// target, long cooldown), `eager` chases the trough hard (hot target,
/// two nodes per action, short cooldown), `steady` sits between.
const PRESETS: [Preset; 3] = [
    Preset {
        name: "gentle",
        target_utilization: 0.40,
        step: 1,
        cooldown_secs: 8.0,
    },
    Preset {
        name: "steady",
        target_utilization: 0.55,
        step: 1,
        cooldown_secs: 4.0,
    },
    Preset {
        name: "eager",
        target_utilization: 0.70,
        step: 2,
        cooldown_secs: 2.0,
    },
];

/// The traffic shapes swept (fixed-rate Poisson never rewards
/// elasticity; both of these spend real time below the mean).
#[derive(Clone, Copy)]
enum Traffic {
    Diurnal,
    Mmpp,
}

impl Traffic {
    fn name(self) -> &'static str {
        match self {
            Traffic::Diurnal => "diurnal",
            Traffic::Mmpp => "mmpp",
        }
    }

    fn pattern(self) -> ArrivalPattern {
        match self {
            Traffic::Diurnal => ArrivalPattern::Diurnal {
                amplitude: DIURNAL_AMPLITUDE,
                period: SimDuration::from_secs(DIURNAL_PERIOD_SECS),
            },
            Traffic::Mmpp => ArrivalPattern::Mmpp {
                low: MMPP_LOW,
                high: MMPP_HIGH,
                mean_dwell: SimDuration::from_secs(MMPP_DWELL_SECS),
            },
        }
    }
}

/// Builds one preset's autoscaler config, with the CLI's `--target-util`
/// and `--cooldown` overrides (already validated there) applied on top.
fn autoscale_config(preset: &Preset, params: &SweepParams) -> AutoscaleConfig {
    AutoscaleConfig {
        target_utilization: params.target_util.unwrap_or(preset.target_utilization),
        step: preset.step,
        cooldown: SimDuration::from_secs_f64(params.cooldown_secs.unwrap_or(preset.cooldown_secs)),
        cold_start: SimDuration::from_millis_f64(ELASTIC_COLD_START_MS),
        min_nodes: ELASTIC_MIN_NODES,
        max_nodes: ELASTIC_NODE_COUNT,
        slo_p99_ms: ELASTIC_SLO_P99_MS,
    }
}

/// The simulation config of one elastic bench cell — the `steady`
/// preset under diurnal traffic, exactly as this scenario's grid builds
/// it — so the bench harness replays an identical cell.
pub(crate) fn bench_cell_config(cfg: &fig6::Fig6Config, rate: f64) -> pcs_sim::SimConfig {
    let mut sim = fig6::cell_config(cfg, rate);
    sim.node_count = ELASTIC_NODE_COUNT;
    sim.arrival_pattern = Traffic::Diurnal.pattern();
    sim.autoscale = Some(autoscale_config(&PRESETS[1], &SweepParams::default()));
    sim
}

/// The elastic sweep's technique set: the no-op, reactive and
/// predictive evacuators (same in full and `--smoke` — the comparison
/// *is* the evacuation capability).
fn elastic_set() -> Vec<techniques::TechniqueRef> {
    vec![techniques::basic(), techniques::ll(), techniques::pcs()]
}

/// The autoscaling metrics appended to every cell (fixed names/order).
fn autoscale_metrics(report: &RunReport) -> Vec<(String, Json)> {
    let a = &report.autoscale;
    vec![
        kv("node_hours", a.node_hours()),
        kv("scale_out_actions", a.stats.scale_out_actions),
        kv("scale_in_actions", a.stats.scale_in_actions),
        kv("cold_starts", a.stats.cold_starts_completed),
        kv("drains_completed", a.stats.drains_completed),
        kv("drains_cancelled", a.stats.drains_cancelled),
        kv("drain_mean_ms", a.drain_mean * 1e3),
        kv("drain_max_ms", a.drain_max * 1e3),
        kv("slo_violation_windows", a.slo_violation_windows),
        kv("measured_windows", a.measured_windows),
        kv("requests_lost", report.faults.stats.requests_lost),
        kv("slo_met", report.component_p99_ms() <= ELASTIC_SLO_P99_MS),
    ]
}

/// Cross-cell reduction: per technique, the cheapest fleet (minimum
/// node-hours) over all cells that still met the SLO — the family's
/// "node-hours at a fixed P99 SLO" score — plus the headline booleans
/// (PCS meets the SLO on strictly fewer node-hours than `ll`/`basic`;
/// a technique that never met the SLO scores null and loses) and the
/// zero-loss invariant.
fn elastic_summary(cells: &[CellOutcome]) -> Vec<(String, Json)> {
    // Insertion-ordered per-technique aggregation.
    let mut order: Vec<String> = Vec::new();
    let mut best: Vec<Option<f64>> = Vec::new();
    let mut met: Vec<u64> = Vec::new();
    let mut total: Vec<u64> = Vec::new();
    let mut lost = 0.0;
    for cell in cells {
        let Some(technique) = cell.value("technique").and_then(Json::as_str) else {
            continue;
        };
        let idx = match order.iter().position(|t| t == technique) {
            Some(i) => i,
            None => {
                order.push(technique.to_string());
                best.push(None);
                met.push(0);
                total.push(0);
                order.len() - 1
            }
        };
        total[idx] += 1;
        lost += cell.value_f64("requests_lost").unwrap_or(0.0);
        let slo_met = cell.value("slo_met") == Some(&Json::Bool(true));
        if !slo_met {
            continue;
        }
        met[idx] += 1;
        if let Some(hours) = cell.value_f64("node_hours") {
            best[idx] = Some(best[idx].map_or(hours, |b: f64| b.min(hours)));
        }
    }
    let at_slo =
        |name: &str| -> Option<f64> { order.iter().position(|t| t == name).and_then(|i| best[i]) };
    let pcs = at_slo("PCS");
    // PCS must itself hold the SLO to win; a comparison technique that
    // never holds it cannot be cheaper at the SLO.
    let beats = |other: Option<f64>| match (pcs, other) {
        (Some(p), Some(o)) => p < o,
        (Some(_), None) => true,
        (None, _) => false,
    };
    let rows = order
        .iter()
        .enumerate()
        .map(|(i, technique)| {
            Json::object(vec![
                kv("technique", technique.clone()),
                (
                    "node_hours_at_slo".to_string(),
                    best[i].map(Json::Num).unwrap_or(Json::Null),
                ),
                kv("cells_meeting_slo", met[i]),
                kv("cells_total", total[i]),
            ])
        })
        .collect();
    vec![
        (
            "pcs_node_hours_at_slo".to_string(),
            pcs.map(Json::Num).unwrap_or(Json::Null),
        ),
        kv("pcs_cheaper_than_ll_at_slo", beats(at_slo("LL"))),
        kv("pcs_cheaper_than_basic_at_slo", beats(at_slo("Basic"))),
        kv("requests_lost_total", lost),
        ("node_hours_by_technique".to_string(), Json::Array(rows)),
    ]
}

/// The scenario registration.
pub struct ElasticScenario;

impl Scenario for ElasticScenario {
    fn name(&self) -> &'static str {
        "elastic"
    }

    fn description(&self) -> &'static str {
        "Autoscaler aggressiveness x traffic shape: node-hours at a fixed P99 SLO"
    }

    fn default_seed(&self) -> u64 {
        62022
    }

    fn techniques_selectable(&self) -> bool {
        true
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let cfg = {
            let mut cfg = base_grid(params, &[100.0]);
            cfg.techniques = technique_grid(params, elastic_set(), elastic_set());
            cfg
        };
        let models = train_models(&cfg);
        // `--smoke` keeps one mid-grid preset and the diurnal trace.
        let presets: &[Preset] = if params.smoke {
            &PRESETS[1..2]
        } else {
            &PRESETS[..]
        };
        let traffic: &[Traffic] = if params.smoke {
            &[Traffic::Diurnal]
        } else {
            &[Traffic::Diurnal, Traffic::Mmpp]
        };
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            for shape in traffic {
                for preset in presets {
                    let autoscale = autoscale_config(preset, params);
                    for technique in &cfg.techniques {
                        let models = models.clone();
                        let cfg = cfg.clone();
                        let technique = technique.clone();
                        let shape = *shape;
                        cells.push(CellPlan {
                            label: format!(
                                "{} @ ~{rate} req/s {} {}",
                                technique.name(),
                                shape.name(),
                                preset.name
                            ),
                            params: vec![
                                kv("rate", rate),
                                kv("technique", technique.name()),
                                kv("traffic", shape.name()),
                                kv("preset", preset.name),
                                kv("target_util", autoscale.target_utilization),
                                kv("step", preset.step),
                                kv("cooldown_s", autoscale.cooldown.as_secs_f64()),
                            ],
                            // Runner seed unused: techniques at one
                            // (rate, traffic) replay the same trace, so
                            // fleet sizes are comparable cell to cell.
                            run: Box::new(move |_cell_seed| {
                                let mut sim_config = fig6::cell_config(&cfg, rate);
                                sim_config.node_count = ELASTIC_NODE_COUNT;
                                sim_config.arrival_pattern = shape.pattern();
                                sim_config.autoscale = Some(autoscale);
                                let report = fig6::run_cell_with_epsilon(
                                    &sim_config,
                                    technique.as_ref(),
                                    &models,
                                    cfg.epsilon_secs,
                                );
                                let mut metrics = report_metrics(&report);
                                metrics.extend(autoscale_metrics(&report));
                                CellResult { metrics }
                            }),
                        });
                    }
                }
            }
        }
        SweepPlan {
            cells,
            summarize: Some(Box::new(elastic_summary)),
            notes: vec![
                format!(
                    "{ELASTIC_NODE_COUNT}-node cluster, floor {ELASTIC_MIN_NODES}, cold start \
                     {ELASTIC_COLD_START_MS} ms; fleet starts fully provisioned and the \
                     autoscaler sheds what it can prove idle"
                ),
                format!(
                    "node_hours_at_slo = cheapest fleet over cells with p99 <= {ELASTIC_SLO_P99_MS} ms; \
                     null = the technique never met the SLO"
                ),
                "drains retire a node only once the scheduler hook evacuated it: basic never \
                 does (full-fleet cost), ll drains one component per interval, pcs in batches"
                    .to_string(),
            ],
        }
    }
}
