//! Scenario registrations for the paper's Figures 5–7 and the §VI-C
//! headline view.

use super::{base_grid, kv, pcs_reduction_summary, report_metrics, technique_grid, train_models};
use crate::experiments::{fig5, fig6, fig7};
use crate::techniques;
use pcs_harness::{CellPlan, CellResult, Json, Scenario, SweepParams, SweepPlan};
use pcs_workloads::BatchWorkload;

/// Figure 5: prediction accuracy of the performance model, one cell per
/// batch workload (the leave-one-out cases of a workload are a serial
/// unit; workloads fan out on the runner).
pub struct Fig5Scenario;

impl Scenario for Fig5Scenario {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn description(&self) -> &'static str {
        "Figure 5: performance-model prediction errors across workloads and input sizes"
    }

    fn default_seed(&self) -> u64 {
        20151511
    }

    // No simulated service runs here: an `--observe` that silently did
    // nothing would poison provenance, so the CLI rejects it.
    fn observe_supported(&self) -> bool {
        false
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let config = fig5::Fig5Config {
            seed: params.seed,
            ..fig5::Fig5Config::default()
        };
        let config = if params.smoke {
            fig5::Fig5Config {
                samples_per_point: 16,
                draws_per_sample: 10,
                measure_draws: 500,
                ..config
            }
        } else {
            config
        };
        let cells = BatchWorkload::ALL
            .into_iter()
            .map(|workload| CellPlan {
                label: workload.name().to_string(),
                params: vec![kv("workload", workload.name())],
                // Per-case RNG streams are derived inside from
                // (config.seed, workload, case); the runner seed is unused
                // so the grid matches the serial fig5::run exactly.
                run: Box::new(move |_cell_seed| {
                    let cases = fig5::run_workload(workload, &config);
                    let mean =
                        cases.iter().map(|c| c.error_pct).sum::<f64>() / cases.len().max(1) as f64;
                    let case_rows = cases
                        .iter()
                        .map(|c| {
                            Json::object(vec![
                                kv("input_mb", c.input_mb),
                                kv("predicted_ms", c.predicted_ms),
                                kv("actual_ms", c.actual_ms),
                                kv("error_pct", c.error_pct),
                            ])
                        })
                        .collect();
                    CellResult {
                        metrics: vec![
                            kv("cases", cases.len()),
                            kv("mean_error_pct", mean),
                            kv(
                                "max_error_pct",
                                cases.iter().map(|c| c.error_pct).fold(0.0, f64::max),
                            ),
                            ("case_errors".to_string(), Json::Array(case_rows)),
                        ],
                    }
                }),
            })
            .collect();
        SweepPlan {
            cells,
            summarize: Some(Box::new(|cells| {
                let errors: Vec<f64> = cells
                    .iter()
                    .flat_map(|cell| match cell.value("case_errors") {
                        Some(Json::Array(rows)) => rows
                            .iter()
                            .filter_map(|row| match row {
                                Json::Object(pairs) => pairs
                                    .iter()
                                    .find(|(k, _)| k == "error_pct")
                                    .and_then(|(_, v)| v.as_f64()),
                                _ => None,
                            })
                            .collect(),
                        _ => Vec::new(),
                    })
                    .collect();
                // Percentages throughout, like mean_error_pct and the
                // paper's own numbers (63.33% / 82.22% / 96.67%).
                let pct_below = |limit: f64| {
                    100.0 * errors.iter().filter(|e| **e < limit).count() as f64
                        / errors.len().max(1) as f64
                };
                vec![
                    kv("cases", errors.len()),
                    kv("pct_cases_below_3pct_error", pct_below(3.0)),
                    kv("pct_cases_below_5pct_error", pct_below(5.0)),
                    kv("pct_cases_below_8pct_error", pct_below(8.0)),
                    kv(
                        "mean_error_pct",
                        errors.iter().sum::<f64>() / errors.len().max(1) as f64,
                    ),
                ]
            })),
            notes: vec![
                "paper: errors < 3% / 5% / 8% in 63.33% / 82.22% / 96.67% of cases; mean 2.68%"
                    .to_string(),
            ],
        }
    }
}

/// Builds the Figure 6 grid cells (shared by [`Fig6Scenario`] and
/// [`HeadlineScenario`]): rates outer, techniques inner, every technique
/// at a rate replaying one trace via [`fig6::rate_seed`].
pub(crate) fn fig6_cells(cfg: &fig6::Fig6Config) -> Vec<CellPlan> {
    let models = train_models(cfg);
    let mut cells = Vec::new();
    for &rate in &cfg.rates {
        for technique in &cfg.techniques {
            let models = models.clone();
            let cfg = cfg.clone();
            let technique = technique.clone();
            cells.push(CellPlan {
                label: format!("{} @ {rate} req/s", technique.name()),
                params: vec![kv("rate", rate), kv("technique", technique.name())],
                // The runner-derived per-cell seed is deliberately unused:
                // the comparison property requires every technique at a
                // rate to replay the same trace, so the sim seed is the
                // SplitMix64 mix of (base seed, rate bits) instead.
                run: Box::new(move |_cell_seed| {
                    let sim_config = fig6::cell_config(&cfg, rate);
                    let report = fig6::run_cell_with_epsilon(
                        &sim_config,
                        technique.as_ref(),
                        &models,
                        cfg.epsilon_secs,
                    );
                    CellResult {
                        metrics: report_metrics(&report),
                    }
                }),
            });
        }
    }
    cells
}

/// Figure 6: six techniques at six arrival rates, plus the headline
/// reductions in the summary.
pub struct Fig6Scenario;

impl Scenario for Fig6Scenario {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn description(&self) -> &'static str {
        "Figure 6: six techniques x six arrival rates on the shared batch-churn trace"
    }

    fn default_seed(&self) -> u64 {
        62015
    }

    fn techniques_selectable(&self) -> bool {
        true
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let mut cfg = base_grid(params, &[10.0, 20.0, 50.0, 100.0, 200.0, 500.0]);
        cfg.techniques = technique_grid(params, techniques::paper_set(), techniques::smoke_set());
        SweepPlan {
            cells: fig6_cells(&cfg),
            summarize: Some(Box::new(pcs_reduction_summary)),
            notes: vec![
                "paper headline: PCS cuts p99 component latency 67.05% and mean overall latency 64.16% vs redundancy/reissue".to_string(),
            ],
        }
    }
}

/// The §VI-C headline view: the fig6 grid with the per-technique
/// reduction table as the point of the run.
pub struct HeadlineScenario;

impl Scenario for HeadlineScenario {
    fn name(&self) -> &'static str {
        "headline"
    }

    fn description(&self) -> &'static str {
        "Headline: PCS's latency reduction vs each technique, per rate (fig6 grid)"
    }

    fn default_seed(&self) -> u64 {
        62015
    }

    fn techniques_selectable(&self) -> bool {
        true
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let mut cfg = base_grid(params, &[10.0, 20.0, 50.0, 100.0, 200.0, 500.0]);
        cfg.techniques = technique_grid(params, techniques::paper_set(), techniques::smoke_set());
        SweepPlan {
            cells: fig6_cells(&cfg),
            summarize: Some(Box::new(pcs_reduction_summary)),
            notes: vec!["paper: 67.05% tail, 64.16% overall".to_string()],
        }
    }
}

/// Figure 7: scheduling-algorithm scalability. Metrics are wall-clock
/// measurements — the one registered sweep whose JSON is *not*
/// byte-reproducible (cell structure and migration counts are).
pub struct Fig7Scenario;

impl Scenario for Fig7Scenario {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn description(&self) -> &'static str {
        "Figure 7: scheduler scalability - analysis + search wall time vs components and nodes"
    }

    fn default_seed(&self) -> u64 {
        72015
    }

    // Wall-clock metrics: the observability layer is zero-cost in
    // simulated time but not in real time, so the CLI rejects the
    // combination rather than let it perturb the measurement.
    fn observe_supported(&self) -> bool {
        false
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let series = if params.smoke {
            vec![(12, 4), (24, 8)]
        } else {
            fig7::paper_series()
        };
        let repeats = params.repeats.unwrap_or(if params.smoke { 1 } else { 5 });
        let cells = series
            .into_iter()
            .map(|(m, k)| CellPlan {
                label: format!("{m} components / {k} nodes"),
                params: vec![kv("components", m), kv("nodes", k)],
                run: Box::new(move |cell_seed| {
                    let point = fig7::measure_point(m, k, repeats, cell_seed);
                    CellResult {
                        metrics: vec![
                            kv("analysis_ms", point.analysis_ms),
                            kv("search_ms", point.search_ms),
                            kv("total_ms", point.total_ms()),
                            kv("migrations", point.migrations),
                        ],
                    }
                }),
            })
            .collect();
        SweepPlan {
            cells,
            summarize: None,
            notes: vec![
                "timings are wall-clock (not byte-reproducible); paper: 551 ms total at 640x128 on 2015 hardware".to_string(),
            ],
        }
    }
}
