//! Cluster-scale scenario: tail quality and scheduler cost as the
//! cluster grows from 100 to 1000 nodes.
//!
//! The paper's testbed stops at 30 nodes and its scalability figure
//! (§VI-D, Figure 7) times the scheduler on synthetic inputs only. This
//! scenario closes the loop in-simulation: deep-chain and wide-fanout
//! services sized proportionally to the cluster run under diurnal and
//! bursty (MMPP) traffic at 100, 400 and 1000 nodes, comparing flat PCS
//! (full matrix rebuild + single global greedy, every interval) against
//! the two-level hierarchical variant `PCS-H` (rack-grouped greedy +
//! incremental matrix refresh). Every cell reports the usual quality
//! metrics *and* the scheduler's deterministic work counters
//! ([`pcs_sim::SchedulerCost`]) — `sched_entries_recomputed` versus
//! `sched_entries_total` is the per-interval matrix cost, and
//! `sched_greedy_iterations` the search cost, both safe to byte-pin
//! because they count events, never wall-clock.
//!
//! Flat PCS is dropped from the default grid at [`FLAT_PCS_MAX_NODES`]
//! and beyond: a full m×k rebuild per 2 s interval at 1000 components ×
//! 1000 nodes is exactly the regime the hierarchical scheduler exists to
//! avoid. `--techniques` (e.g. `--techniques pcs,pcs-h640`) overrides the
//! grid at every size; `--sizes` and `--group-cap` override the cluster
//! grid and the PCS-H group cap.

use super::{kv, report_metrics, train_models};
use crate::experiments::fig6::{self, Fig6Config};
use crate::techniques::{self, TechniqueRef};
use pcs_harness::{
    seed, CellOutcome, CellPlan, CellResult, Json, Scenario, SweepParams, SweepPlan,
};
use pcs_sim::SimConfig;
use pcs_types::SimDuration;
use pcs_workloads::{ArrivalPattern, ServiceTopology};

/// The default cluster-size grid (`--sizes` overrides it).
pub const DEFAULT_SIZES: [usize; 3] = [100, 400, 1000];

/// Smallest accepted cluster size: the deep-chain service needs one
/// component per stage of its `CHAIN_DEPTH`-deep pipeline, and the CLI
/// rejects `--sizes` entries below this as degenerate.
pub const MIN_NODES: usize = 8;

/// Node count of the `--smoke` grid: two racks, big enough for the
/// rack-grouped level-1 walk to be non-trivial, small enough for CI.
pub const SMOKE_NODES: usize = 40;

/// From this cluster size on, the default grid runs only `PCS-H` (flat
/// PCS's full per-interval rebuild is the cost this scenario measures
/// out of existence; it stays in the grid below the cutoff so the report
/// pins the crossover).
pub const FLAT_PCS_MAX_NODES: usize = 1000;

/// Nodes per rack (paper-like shallow racks: 1000 nodes → 50 racks).
const NODES_PER_RACK: usize = 20;

/// Stages of the deep-chain service.
const CHAIN_DEPTH: usize = 8;

/// Base request arrival rate (req/s). A request fans out to every
/// partition of every stage, so per-request work already scales with the
/// cluster; the rate stays moderate and fixed across sizes.
const BASE_RATE: f64 = 25.0;

/// Diurnal modulation depth / period (matches the `diurnal` scenario).
const DIURNAL_AMPLITUDE: f64 = 0.7;
const DIURNAL_PERIOD_SECS: u64 = 20;

/// MMPP calm/burst multipliers and dwell (matches the `mmpp` scenario).
const MMPP_LOW: f64 = 0.25;
const MMPP_HIGH: f64 = 1.75;
const MMPP_DWELL_SECS: u64 = 4;

/// The service shapes swept at every cluster size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScaleService {
    /// `CHAIN_DEPTH` serial stages of `size / CHAIN_DEPTH` components
    /// each: stage maxima are narrow, so single migrations move the
    /// end-to-end latency — the scheduler-friendly shape.
    DeepChain,
    /// One router, a worker pool of 0.9·size, and `size / 20` mergers:
    /// one very wide stage whose max is statistically flat — the
    /// scheduler-hostile shape.
    WideFanout,
}

impl ScaleService {
    fn name(self) -> &'static str {
        match self {
            ScaleService::DeepChain => "deep-chain",
            ScaleService::WideFanout => "wide-fanout",
        }
    }

    fn topology(self, size: usize) -> ServiceTopology {
        match self {
            ScaleService::DeepChain => {
                ServiceTopology::deep_chain(CHAIN_DEPTH, (size / CHAIN_DEPTH).max(1))
            }
            ScaleService::WideFanout => {
                ServiceTopology::wide_fanout((size * 9 / 10).max(1), (size / 20).max(1))
            }
        }
    }
}

/// The traffic shapes swept at every cluster size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScaleTraffic {
    Diurnal,
    Mmpp,
}

impl ScaleTraffic {
    fn name(self) -> &'static str {
        match self {
            ScaleTraffic::Diurnal => "diurnal",
            ScaleTraffic::Mmpp => "mmpp",
        }
    }

    fn pattern(self) -> ArrivalPattern {
        match self {
            ScaleTraffic::Diurnal => ArrivalPattern::Diurnal {
                amplitude: DIURNAL_AMPLITUDE,
                period: SimDuration::from_secs(DIURNAL_PERIOD_SECS),
            },
            ScaleTraffic::Mmpp => ArrivalPattern::Mmpp {
                low: MMPP_LOW,
                high: MMPP_HIGH,
                mean_dwell: SimDuration::from_secs(MMPP_DWELL_SECS),
            },
        }
    }
}

/// The simulation config of one scale cell: paper-like ratios, a cluster
/// of `size` nodes in `size / 20` racks, and a shortened horizon (the
/// grid is three cluster sizes × two services × two traffic shapes, so
/// each cell stays seconds of wall-clock even at 1000 nodes).
fn scale_config(
    size: usize,
    service: ScaleService,
    rate: f64,
    seed: u64,
    smoke: bool,
    shards: usize,
) -> SimConfig {
    let mut config = SimConfig::paper_like(service.topology(size), rate, seed);
    config.node_count = size;
    config.rack_count = (size / NODES_PER_RACK).max(1);
    config.shards = shards;
    let (horizon, warmup) = if smoke { (8, 2) } else { (30, 5) };
    config.horizon = SimDuration::from_secs(horizon);
    config.warmup = SimDuration::from_secs(warmup);
    config
}

/// The simulation config of one `pcs bench` `parallel`-section cell: the
/// deep-chain scale cell under diurnal traffic, shared here so the bench
/// measures exactly this scenario's workload (serial engine at
/// `shards = 0`, the sharded LP engine otherwise).
pub fn bench_config(size: usize, shards: usize, smoke: bool, seed: u64) -> SimConfig {
    let mut config = scale_config(
        size,
        ScaleService::DeepChain,
        BASE_RATE,
        seed,
        smoke,
        shards,
    );
    config.arrival_pattern = ScaleTraffic::Diurnal.pattern();
    config
}

/// The scheduler's deterministic work counters as cell metrics. Zeros
/// for hooks that do not track cost (e.g. a `--techniques basic` cell).
fn scheduler_cost_metrics(report: &pcs_sim::RunReport) -> Vec<(String, Json)> {
    let c = report.scheduler_cost.unwrap_or_default();
    let per_interval = if c.intervals == 0 {
        0.0
    } else {
        c.entries_recomputed as f64 / c.intervals as f64
    };
    vec![
        kv("sched_intervals", c.intervals),
        kv("sched_matrix_builds", c.matrix_builds),
        kv("sched_matrix_refreshes", c.matrix_refreshes),
        kv("sched_entries_recomputed", c.entries_recomputed),
        kv("sched_entries_total", c.entries_total),
        kv("sched_entries_per_interval", per_interval),
        kv("sched_greedy_iterations", c.greedy_iterations),
    ]
}

/// Cross-cell reduction: for every PCS-H cell, the flat-PCS cell on the
/// same trace (size, service, traffic, rate), with the tail-latency
/// delta and the matrix-work ratio. Sizes where flat PCS is absent (the
/// default grid at ≥ [`FLAT_PCS_MAX_NODES`]) report the hierarchical
/// cost alone.
fn scale_summary(cells: &[CellOutcome]) -> Vec<(String, Json)> {
    let technique = |c: &CellOutcome| {
        c.value("technique")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string()
    };
    let same_trace = |a: &CellOutcome, b: &CellOutcome| {
        ["size", "service", "traffic", "rate"]
            .iter()
            .all(|k| a.value(k) == b.value(k))
    };
    let mut rows = Vec::new();
    let mut tail_deltas = Vec::new();
    let mut work_ratios = Vec::new();
    for cell in cells {
        if !technique(cell).starts_with("PCS-H") {
            continue;
        }
        let flat = cells
            .iter()
            .find(|c| technique(c) == "PCS" && same_trace(c, cell));
        let ratio = |metric: &str| -> Option<f64> {
            let hier = cell.value_f64(metric)?;
            let flat = flat?.value_f64(metric)?;
            (flat > 0.0 && flat.is_finite() && hier.is_finite()).then_some(hier / flat)
        };
        let tail_delta = ratio("p99_component_ms").map(|r| (r - 1.0) * 100.0);
        let work_ratio = ratio("sched_entries_recomputed").map(|r| r * 100.0);
        if let Some(d) = tail_delta {
            tail_deltas.push(d);
        }
        if let Some(w) = work_ratio {
            work_ratios.push(w);
        }
        let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        rows.push(Json::object(vec![
            (
                "size".to_string(),
                cell.value("size").cloned().unwrap_or(Json::Null),
            ),
            (
                "service".to_string(),
                cell.value("service").cloned().unwrap_or(Json::Null),
            ),
            (
                "traffic".to_string(),
                cell.value("traffic").cloned().unwrap_or(Json::Null),
            ),
            kv(
                "hier_entries_per_interval",
                cell.value_f64("sched_entries_per_interval").unwrap_or(0.0),
            ),
            ("tail_delta_vs_flat_pct".to_string(), opt(tail_delta)),
            ("matrix_work_vs_flat_pct".to_string(), opt(work_ratio)),
        ]));
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    vec![
        kv("hier_mean_tail_delta_pct", mean(&tail_deltas)),
        kv("hier_mean_matrix_work_pct", mean(&work_ratios)),
        ("hier_vs_flat_per_cell".to_string(), Json::Array(rows)),
    ]
}

/// The default technique column at one cluster size: flat PCS (below the
/// cutoff) against PCS-H with the sweep's group cap.
fn default_techniques(size: usize, cap: usize) -> Vec<TechniqueRef> {
    if size >= FLAT_PCS_MAX_NODES {
        vec![techniques::pcs_hier(cap)]
    } else {
        vec![techniques::pcs(), techniques::pcs_hier(cap)]
    }
}

/// Tail quality and per-interval scheduler cost from 100 to 1000 nodes.
pub struct ScaleScenario;

impl Scenario for ScaleScenario {
    fn name(&self) -> &'static str {
        "scale"
    }

    fn description(&self) -> &'static str {
        "Flat vs hierarchical PCS at 100/400/1000 nodes: tail quality and scheduler cost"
    }

    fn default_seed(&self) -> u64 {
        62020
    }

    fn techniques_selectable(&self) -> bool {
        true
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let mut cfg = Fig6Config {
            seed: params.seed,
            rates: vec![BASE_RATE],
            ..Fig6Config::default()
        };
        if params.smoke {
            cfg.search_vm_budget = 8;
        }
        if let Some(rates) = &params.rates {
            cfg.rates = rates.clone();
        }
        let cap = params.group_cap.unwrap_or(techniques::DEFAULT_GROUP_CAP);
        let sizes = params.sizes.clone().unwrap_or_else(|| {
            if params.smoke {
                vec![SMOKE_NODES]
            } else {
                DEFAULT_SIZES.to_vec()
            }
        });
        for &size in &sizes {
            assert!(
                size >= MIN_NODES,
                "scale cluster size must be >= {MIN_NODES}, got {size}"
            );
        }
        // `--shards 0` never reaches us (the CLI rejects it); 0 here is
        // the internal spelling of "serial engine".
        let shards = params.shards.unwrap_or(0);
        if let Some(&smallest) = sizes.iter().min() {
            assert!(
                shards <= smallest,
                "--shards ({shards}) cannot exceed the smallest cluster size ({smallest}): \
                 every shard needs at least one node"
            );
        }
        let traffics = if params.smoke {
            vec![ScaleTraffic::Diurnal]
        } else {
            vec![ScaleTraffic::Diurnal, ScaleTraffic::Mmpp]
        };
        let smoke = params.smoke;
        // The CLI rejects `--observe --shards` (the LP engine does not
        // support the layer), so observe-on cells always run serial.
        let observe = params.observe;
        // The class list is shared with the Nutch topology (both services
        // cycle the same component classes), so one profiling campaign
        // covers every cell.
        let models = train_models(&cfg);
        let mut cells = Vec::new();
        for &size in &sizes {
            for (service_idx, service) in [ScaleService::DeepChain, ScaleService::WideFanout]
                .into_iter()
                .enumerate()
            {
                for (traffic_idx, &traffic) in traffics.iter().enumerate() {
                    for &rate in &cfg.rates {
                        // One trace per (size, service, traffic, rate):
                        // techniques compete on identical arrivals/churn.
                        let trace_seed = seed::mix_f64(
                            seed::mix(
                                seed::mix(seed::mix(cfg.seed, size as u64), service_idx as u64),
                                traffic_idx as u64,
                            ),
                            rate,
                        );
                        let set = techniques::resolve(
                            params.techniques.as_deref(),
                            default_techniques(size, cap),
                        );
                        for technique in set {
                            let models = models.clone();
                            let epsilon_secs = cfg.epsilon_secs;
                            cells.push(CellPlan {
                                label: format!(
                                    "{} {} @ {size}n {}",
                                    technique.name(),
                                    service.name(),
                                    traffic.name()
                                ),
                                params: {
                                    let mut p = vec![
                                        kv("size", size as u64),
                                        kv("racks", (size / NODES_PER_RACK).max(1) as u64),
                                        kv("service", service.name()),
                                        kv("traffic", traffic.name()),
                                        kv("rate", rate),
                                        kv("technique", technique.name()),
                                    ];
                                    // Only LP runs carry the coordinate:
                                    // serial reports keep their historical
                                    // bytes (no `shards` key at all).
                                    if shards >= 1 {
                                        p.push(kv("shards", shards as u64));
                                    }
                                    p
                                },
                                // Runner seed unused: cells in one trace
                                // group share `trace_seed` (see above).
                                run: Box::new(move |_cell_seed| {
                                    let mut sim_config = scale_config(
                                        size, service, rate, trace_seed, smoke, shards,
                                    );
                                    sim_config.arrival_pattern = traffic.pattern();
                                    sim_config.observe =
                                        observe.map(|top_k| pcs_sim::ObserveConfig { top_k });
                                    let report = fig6::run_cell_with_epsilon(
                                        &sim_config,
                                        technique.as_ref(),
                                        &models,
                                        epsilon_secs,
                                    );
                                    let mut metrics = report_metrics(&report);
                                    metrics.extend(scheduler_cost_metrics(&report));
                                    CellResult { metrics }
                                }),
                            });
                        }
                    }
                }
            }
        }
        SweepPlan {
            cells,
            summarize: Some(Box::new(scale_summary)),
            notes: vec![
                format!(
                    "default grid drops flat PCS at >= {FLAT_PCS_MAX_NODES} nodes; PCS-H{cap} runs everywhere (`--techniques pcs,hier` to force both)"
                ),
                "sched_* metrics are deterministic event counters (matrix entries, greedy iterations), never wall-clock — safe to pin byte-for-byte".to_string(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param<'a>(cell: &'a CellPlan, name: &str) -> Option<&'a Json> {
        cell.params.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    #[test]
    fn default_grid_drops_flat_pcs_at_the_cutoff() {
        let below: Vec<String> = default_techniques(400, 64)
            .iter()
            .map(|t| t.name())
            .collect();
        assert_eq!(below, vec!["PCS", "PCS-H64"]);
        let at: Vec<String> = default_techniques(1000, 96)
            .iter()
            .map(|t| t.name())
            .collect();
        assert_eq!(at, vec!["PCS-H96"]);
    }

    #[test]
    fn smoke_plan_is_small_and_trace_grouped() {
        let params = SweepParams {
            seed: 62020,
            smoke: true,
            ..SweepParams::default()
        };
        let plan = ScaleScenario.plan(&params);
        // 1 size × 2 services × 1 traffic × 2 techniques.
        assert_eq!(plan.cells.len(), 4);
        for cell in &plan.cells {
            assert_eq!(
                param(cell, "size").and_then(Json::as_f64),
                Some(SMOKE_NODES as f64)
            );
        }
    }

    #[test]
    fn sizes_and_group_cap_overrides_apply() {
        let params = SweepParams {
            seed: 1,
            smoke: true,
            sizes: Some(vec![16]),
            group_cap: Some(5),
            ..SweepParams::default()
        };
        let plan = ScaleScenario.plan(&params);
        assert_eq!(plan.cells.len(), 4);
        assert!(plan
            .cells
            .iter()
            .any(|c| param(c, "technique").and_then(Json::as_str) == Some("PCS-H5")));
    }

    #[test]
    #[should_panic(expected = "cluster size must be >= 8")]
    fn degenerate_sizes_are_rejected() {
        let params = SweepParams {
            sizes: Some(vec![4]),
            smoke: true,
            ..SweepParams::default()
        };
        let _ = ScaleScenario.plan(&params);
    }

    #[test]
    fn summary_compares_hier_to_flat_on_the_same_trace() {
        let mk = |technique: &str, size: u64, p99: f64, entries: f64| CellOutcome {
            label: technique.into(),
            params: vec![
                kv("size", size),
                kv("service", "deep-chain"),
                kv("traffic", "diurnal"),
                kv("rate", 25.0),
                kv("technique", technique),
            ],
            metrics: vec![
                kv("p99_component_ms", p99),
                kv("sched_entries_recomputed", entries),
                kv("sched_entries_per_interval", entries / 10.0),
            ],
        };
        let cells = vec![
            mk("PCS", 100, 10.0, 1000.0),
            mk("PCS-H64", 100, 10.5, 250.0),
            mk("PCS-H64", 1000, 20.0, 5000.0),
        ];
        let summary = scale_summary(&cells);
        assert_eq!(summary[0].0, "hier_mean_tail_delta_pct");
        assert!((summary[0].1.as_f64().unwrap() - 5.0).abs() < 1e-9);
        assert_eq!(summary[1].0, "hier_mean_matrix_work_pct");
        assert!((summary[1].1.as_f64().unwrap() - 25.0).abs() < 1e-9);
        // Two PCS-H rows; the 1000-node one has no flat partner.
        let Json::Array(rows) = &summary[2].1 else {
            panic!("rows must be an array")
        };
        assert_eq!(rows.len(), 2);
    }
}
