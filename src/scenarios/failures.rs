//! The `failures` scenario family: node kill/restore dynamics over the
//! open technique registry.
//!
//! Nothing is less predictable than a node dying — and the paper's
//! blind baselines have no answer to it at all: a RED/RI replica group
//! absorbs a dead member, but an unreplicated component stays lost until
//! *some* scheduler re-places it. This family kills nodes mid-run and
//! measures, per technique, how fast the survivors are evacuated
//! (kill → last orphan re-placed), how many requests die on the floor,
//! and what the tail looks like before, during and after the outage.
//!
//! Three plans per sweep (all seeded per cell via `pcs_harness::seed`,
//! so every technique at a rate replays the identical outage):
//!
//! * `single-kill` — one node dies and never returns: the acid test for
//!   evacuation, since only migration can re-place the orphans;
//! * `kill-restore` — the node returns after a bounded downtime, so
//!   blind techniques "recover" exactly at the restore while
//!   migration-capable ones recover earlier;
//! * `cascade` — a two-node correlated rack outage in quick succession,
//!   restored together later.
//!
//! The cluster is deliberately compact (6 nodes) so every node hosts
//! several components: a reactive one-move-per-interval evacuator (`ll`)
//! visibly lags the PCS controller's batched evacuation, which is the
//! point of the comparison.

use super::{base_grid, kv, report_metrics, technique_grid, train_models};
use crate::experiments::fig6;
use crate::techniques;
use pcs_harness::{
    seed, CellOutcome, CellPlan, CellResult, Json, Scenario, SweepParams, SweepPlan,
};
use pcs_sim::{FaultKind, FaultPlan, RunReport, SimConfig};
use pcs_types::SimTime;

/// Node count of the failures cluster: small enough that every node
/// hosts at least two components in both the smoke and the full grid.
/// Shared with the bench harness, whose failures cells replay this
/// scenario's grid.
pub(crate) const FAIL_NODE_COUNT: usize = 6;

/// One-shot and kill-restore victims are drawn from the first four
/// nodes, which host at least two components each under anti-affine
/// placement in every grid this scenario builds (10 components smoke /
/// 102 full over 6 nodes).
const VICTIM_POOL: usize = 4;

/// The correlated outage's rack width.
const RACK_SIZE: usize = 2;

/// The fault patterns swept per rate.
const PLANS: [&str; 3] = ["single-kill", "kill-restore", "cascade"];

/// Builds one plan's fault schedule against a cell's simulation config.
/// Timing scales with the horizon so `--smoke` keeps the same shape:
/// kill at 25% of the measured span, restore 35% later, cascade kills
/// 0.4 s apart (inside one scheduling interval). `pub(crate)` so the
/// bench harness measures the identical outage.
pub(crate) fn fault_plan(plan: &str, plan_seed: u64, sim: &SimConfig) -> FaultPlan {
    let measured = sim.horizon - sim.warmup;
    let kill_at = SimTime::ZERO + sim.warmup + measured.mul_f64(0.25);
    let downtime = measured.mul_f64(0.35);
    match plan {
        "single-kill" => FaultPlan::one_shot(VICTIM_POOL, plan_seed, kill_at),
        "kill-restore" => FaultPlan::kill_restore(VICTIM_POOL, plan_seed, kill_at, downtime),
        "cascade" => FaultPlan::correlated_rack(
            FAIL_NODE_COUNT,
            RACK_SIZE,
            plan_seed,
            kill_at,
            sim.scheduler_interval.mul_f64(0.2),
            Some(downtime),
        ),
        other => unreachable!("unknown fault plan `{other}`"),
    }
}

/// The failures sweep's default technique set: the paper's families plus
/// the reactive and oracle baselines (the acceptance comparison).
fn failures_set() -> Vec<techniques::TechniqueRef> {
    vec![
        techniques::basic(),
        techniques::red(3),
        techniques::ri(90.0),
        techniques::ll(),
        techniques::oracle(),
        techniques::pcs(),
    ]
}

/// The `--smoke` shrink: the no-op, reactive and predictive evacuators.
fn failures_smoke_set() -> Vec<techniques::TechniqueRef> {
    vec![techniques::basic(), techniques::ll(), techniques::pcs()]
}

/// The fault metrics appended to every cell (fixed names and order).
fn fault_metrics(report: &RunReport) -> Vec<(String, Json)> {
    let f = &report.faults;
    let ms = |s: &pcs_monitor::LatencySummary| s.p99 * 1e3;
    vec![
        kv("kills", f.stats.kills),
        kv("orphaned", f.stats.orphaned),
        kv("evacuated", f.stats.evacuated),
        kv("restored_in_place", f.stats.restored_in_place),
        kv("unresolved_orphans", f.unresolved_orphans),
        (
            "evacuation_ms".to_string(),
            f.evacuation_ms().map(Json::Num).unwrap_or(Json::Null),
        ),
        kv("requests_lost", f.stats.requests_lost),
        kv("failed_over", f.stats.failed_over),
        kv("p99_pre_ms", ms(&f.pre_fault)),
        kv("p99_during_ms", ms(&f.during_fault)),
        kv("p99_post_ms", ms(&f.post_fault)),
    ]
}

/// Cross-cell reduction: per plan, each technique's evacuation latency
/// and request loss side by side, plus the headline scalars — the worst
/// PCS evacuation versus the worst reactive (`LL`) one.
fn failures_summary(cells: &[CellOutcome]) -> Vec<(String, Json)> {
    let mut rows = Vec::new();
    let mut pcs_worst: Option<f64> = None;
    let mut ll_worst: Option<f64> = None;
    for cell in cells {
        let Some(technique) = cell.value("technique").and_then(Json::as_str) else {
            continue;
        };
        let technique = technique.to_string();
        let plan = cell
            .value("plan")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let evacuation = cell.value("evacuation_ms").cloned().unwrap_or(Json::Null);
        if let Some(ms) = evacuation.as_f64() {
            match technique.as_str() {
                "PCS" => pcs_worst = Some(pcs_worst.unwrap_or(0.0).max(ms)),
                "LL" => ll_worst = Some(ll_worst.unwrap_or(0.0).max(ms)),
                _ => {}
            }
        }
        rows.push(Json::object(vec![
            kv("plan", plan),
            kv("vs_technique", technique),
            ("evacuation_ms".to_string(), evacuation),
            (
                "unresolved_orphans".to_string(),
                cell.value("unresolved_orphans")
                    .cloned()
                    .unwrap_or(Json::Null),
            ),
            (
                "requests_lost".to_string(),
                cell.value("requests_lost").cloned().unwrap_or(Json::Null),
            ),
        ]));
    }
    let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
    vec![
        ("pcs_worst_evacuation_ms".to_string(), opt(pcs_worst)),
        ("ll_worst_evacuation_ms".to_string(), opt(ll_worst)),
        ("evacuation_by_cell".to_string(), Json::Array(rows)),
    ]
}

/// The rolling-restart maintenance wave over the failures cluster:
/// node `i` goes down at `start + i·period` and returns `downtime`
/// later, sweeping the whole cluster once. Timing fractions of the
/// measured span (so `--smoke` keeps the shape): the wave starts 5% in,
/// nodes restart every 15%, each stays down for 10% — longer than the
/// scheduling interval in the full grid, so migration-capable techniques
/// get to evacuate ahead of each restore while blind ones ride out every
/// outage.
fn rolling_plan(sim: &SimConfig) -> FaultPlan {
    let measured = sim.horizon - sim.warmup;
    FaultPlan::rolling_restart(
        FAIL_NODE_COUNT,
        SimTime::ZERO + sim.warmup + measured.mul_f64(0.05),
        measured.mul_f64(0.15),
        measured.mul_f64(0.10),
    )
}

/// The `failures-rolling` scenario: the ROADMAP's maintenance-wave
/// follow-up. One rolling restart across all six nodes over a long
/// horizon (twice the family default), per registry technique.
pub struct RollingRestartScenario;

impl Scenario for RollingRestartScenario {
    fn name(&self) -> &'static str {
        "failures-rolling"
    }

    fn description(&self) -> &'static str {
        "Maintenance wave: rolling node restarts under load, long horizon"
    }

    fn default_seed(&self) -> u64 {
        62020
    }

    fn techniques_selectable(&self) -> bool {
        true
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let mut cfg = base_grid(params, &[100.0]);
        // A whole-cluster wave needs a long horizon: double the family
        // default (the `--smoke` shrink is applied first, so smoke runs
        // stay CI-sized).
        cfg.horizon_scale *= 2.0;
        cfg.techniques = technique_grid(params, failures_set(), failures_smoke_set());
        let models = train_models(&cfg);
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            // One deterministic wave per rate, identical for every
            // technique ([`FaultPlan::rolling_restart`] draws nothing).
            let mut sim_probe = fig6::cell_config(&cfg, rate);
            sim_probe.node_count = FAIL_NODE_COUNT;
            let schedule = rolling_plan(&sim_probe);
            let victims: Vec<Json> = schedule
                .events()
                .iter()
                .filter(|e| e.kind == FaultKind::Kill)
                .map(|e| Json::from(e.node.index() as u64))
                .collect();
            for technique in &cfg.techniques {
                let models = models.clone();
                let cfg = cfg.clone();
                let technique = technique.clone();
                let schedule = schedule.clone();
                cells.push(CellPlan {
                    label: format!("{} @ {rate} req/s rolling-restart", technique.name()),
                    params: vec![
                        kv("rate", rate),
                        kv("technique", technique.name()),
                        kv("plan", "rolling-restart".to_string()),
                        ("victims".to_string(), Json::Array(victims.clone())),
                    ],
                    // Runner seed unused: techniques replay one trace.
                    run: Box::new(move |_cell_seed| {
                        let mut sim_config = fig6::cell_config(&cfg, rate);
                        sim_config.node_count = FAIL_NODE_COUNT;
                        sim_config.faults = schedule.clone();
                        let report = fig6::run_cell_with_epsilon(
                            &sim_config,
                            technique.as_ref(),
                            &models,
                            cfg.epsilon_secs,
                        );
                        let mut metrics = report_metrics(&report);
                        metrics.extend(fault_metrics(&report));
                        CellResult { metrics }
                    }),
                });
            }
        }
        SweepPlan {
            cells,
            summarize: Some(Box::new(failures_summary)),
            notes: vec![
                format!(
                    "rolling restart over all {FAIL_NODE_COUNT} nodes: wave starts 5% into the \
                     measured span, one node every 15%, each down for 10%"
                ),
                "evacuation_ms = kill -> last orphan re-placed (migration or restore); null = never"
                    .to_string(),
            ],
        }
    }
}

/// The scenario registration.
pub struct FailuresScenario;

impl Scenario for FailuresScenario {
    fn name(&self) -> &'static str {
        "failures"
    }

    fn description(&self) -> &'static str {
        "Techniques under node kill/restore faults (evacuation latency, request loss)"
    }

    fn default_seed(&self) -> u64 {
        62019
    }

    fn techniques_selectable(&self) -> bool {
        true
    }

    fn plan(&self, params: &SweepParams) -> SweepPlan {
        let mut cfg = base_grid(params, &[100.0]);
        cfg.techniques = technique_grid(params, failures_set(), failures_smoke_set());
        let models = train_models(&cfg);
        let mut cells = Vec::new();
        for &rate in &cfg.rates {
            for (plan_index, plan) in PLANS.iter().enumerate() {
                // One outage per (rate, plan), shared by every technique:
                // the comparison is on an identical trace. The schedule
                // and its victims (cell-param provenance: which nodes
                // die, when) are resolved here, once, and cloned into
                // every technique's cell.
                let plan_seed = seed::mix(fig6::rate_seed(cfg.seed, rate), plan_index as u64);
                let mut sim_probe = fig6::cell_config(&cfg, rate);
                sim_probe.node_count = FAIL_NODE_COUNT;
                let schedule = fault_plan(plan, plan_seed, &sim_probe);
                let victims: Vec<Json> = schedule
                    .events()
                    .iter()
                    .filter(|e| e.kind == FaultKind::Kill)
                    .map(|e| Json::from(e.node.index() as u64))
                    .collect();
                for technique in &cfg.techniques {
                    let models = models.clone();
                    let cfg = cfg.clone();
                    let technique = technique.clone();
                    let schedule = schedule.clone();
                    cells.push(CellPlan {
                        label: format!("{} @ {rate} req/s {plan}", technique.name()),
                        params: vec![
                            kv("rate", rate),
                            kv("technique", technique.name()),
                            kv("plan", plan.to_string()),
                            ("victims".to_string(), Json::Array(victims.clone())),
                        ],
                        // Runner seed unused: techniques at one (rate,
                        // plan) replay the same trace and outage.
                        run: Box::new(move |_cell_seed| {
                            let mut sim_config = fig6::cell_config(&cfg, rate);
                            sim_config.node_count = FAIL_NODE_COUNT;
                            sim_config.faults = schedule.clone();
                            let report = fig6::run_cell_with_epsilon(
                                &sim_config,
                                technique.as_ref(),
                                &models,
                                cfg.epsilon_secs,
                            );
                            let mut metrics = report_metrics(&report);
                            metrics.extend(fault_metrics(&report));
                            CellResult { metrics }
                        }),
                    });
                }
            }
        }
        SweepPlan {
            cells,
            summarize: Some(Box::new(failures_summary)),
            notes: vec![
                format!(
                    "6-node cluster; kill at 25% of the measured span, restores 35% later; \
                     cascade = {RACK_SIZE}-node rack, kills one fifth of a scheduling interval apart"
                ),
                "evacuation_ms = kill -> last orphan re-placed (migration or restore); null = never"
                    .to_string(),
            ],
        }
    }
}
