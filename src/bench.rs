//! The `pcs bench` harness: the repo's performance trajectory,
//! machine-readable.
//!
//! Two complementary measurements, both emitted into one JSON report
//! (`BENCH_PR<N>.json` at the repo root is the per-PR convention):
//!
//! * **event-loop benches** — individual simulation cells run directly
//!   through [`fig6::run_cell_with_epsilon`], reporting wall-clock *and*
//!   the DES core's events/sec (from
//!   [`pcs_sim::RunReport::events_processed`]). The cells mirror the
//!   pinned scenario grids: the fig6 smoke grid (Basic/RED-2/PCS at
//!   80 req/s) and the failures smoke grid (Basic/LL/PCS under a
//!   single-kill outage), plus heavier full-grid cells outside `--smoke`.
//! * **scheduler-cost benches** — the per-interval cost of maintaining
//!   and running the scheduler at growing cluster sizes (`m = k` = 100,
//!   400, 1000), flat full-rebuild + global greedy versus the `PCS-H`
//!   loop (incremental [`pcs_core::PerformanceMatrix::refresh`] +
//!   rack-grouped bounded greedy) over an identical monitored-drift
//!   sequence. Reports wall-clock *and* the deterministic
//!   entries-recomputed-per-interval.
//! * **elastic benches** — the elastic scenario's `steady`-preset
//!   diurnal cell per evacuation capability (Basic/LL/PCS), reporting
//!   wall-clock, events/sec and the deterministic node-hours each
//!   technique bills — the autoscaling subsystem's cost metric, pinned
//!   alongside its perf.
//! * **observability benches** — the pinned fig6 smoke PCS cell run
//!   with the observe layer off and on (same trace: instrumentation
//!   consumes no randomness and schedules no events), reporting both
//!   wall-clocks and the on/off overhead ratio. The off row is the
//!   regression sentinel for the layer's zero-cost-when-disabled claim.
//! * **scenario sweeps** — every registered scenario family, run through
//!   the real [`pcs_harness::run_sweep`] on smoke budgets, so a perf
//!   regression anywhere in the registry shows up as wall-clock.
//!
//! Each measurement repeats `repeats` times and keeps the **minimum**
//! wall-clock (the least-noise estimator for a deterministic
//! computation). Passing `--baseline <previous report>` embeds that
//! report's numbers and a per-entry speedup table, which is how a PR
//! demonstrates its win against the predecessor measured on the same
//! machine.
//!
//! Bench reports are intentionally **not** byte-reproducible (they carry
//! wall-clock); the scenario reports proper remain byte-pinned and are
//! untouched by benching.

use crate::experiments::fig6::{self, Fig6Config};
use crate::experiments::fig7;
use crate::scenarios::{self, base_grid, train_models};
use crate::techniques::{self, TechniqueRef};
use pcs_core::{
    ClassModelSet, ComponentInput, ComponentScheduler, HierarchicalScheduler, MatrixConfig,
    MatrixInputs, NodeInput, PerformanceMatrix, SchedulerConfig,
};
use pcs_harness::{run_sweep, Json, SweepParams};
use pcs_sim::SimConfig;
use pcs_types::{ComponentId, NodeCapacity, NodeId, ResourceVector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Report schema tag; bump when the layout changes incompatibly.
pub const SCHEMA: &str = "pcs-bench/1";

/// Knobs of one bench invocation.
#[derive(Debug, Clone)]
pub struct BenchParams {
    /// CI mode: fewer repeats, smoke-grid event-loop cells only.
    pub smoke: bool,
    /// Restrict the scenario-sweep section to these families.
    pub scenarios: Option<Vec<String>>,
    /// Measurement repeats per entry (the minimum wall-clock is kept).
    pub repeats: usize,
    /// Worker threads for the scenario sweeps.
    pub threads: usize,
    /// Free-form label recorded in the report (e.g. `PR5`).
    pub label: String,
    /// A previous bench report to compare against, already parsed.
    pub baseline: Option<Json>,
}

impl Default for BenchParams {
    fn default() -> Self {
        BenchParams {
            smoke: false,
            scenarios: None,
            repeats: 3,
            threads: SweepParams::default().threads,
            label: String::new(),
            baseline: None,
        }
    }
}

/// One event-loop bench cell: a single simulation run, timed.
struct EventLoopBench {
    name: String,
    rate: f64,
    config: SimConfig,
    technique: TechniqueRef,
    models: Arc<ClassModelSet>,
    epsilon_secs: f64,
}

/// The fig6 smoke grid exactly as the pinned `fig6 --smoke` report runs
/// it: Basic, RED-2 and PCS at 80 req/s on the 10-component topology.
fn fig6_smoke_benches() -> Vec<EventLoopBench> {
    let params = SweepParams {
        seed: 62015,
        smoke: true,
        ..SweepParams::default()
    };
    let cfg = base_grid(&params, &[10.0, 20.0, 50.0, 100.0, 200.0, 500.0]);
    grid_benches("fig6-smoke", &cfg, techniques::smoke_set(), |c| c.clone())
}

/// Heavier full-grid fig6 cells (outside `--smoke`): the paper topology
/// at 200 req/s under the four mechanism families.
fn fig6_full_benches() -> Vec<EventLoopBench> {
    let params = SweepParams {
        seed: 62015,
        ..SweepParams::default()
    };
    let cfg = base_grid(&params, &[200.0]);
    let set = vec![
        techniques::basic(),
        techniques::red(3),
        techniques::ri(90.0),
        techniques::pcs(),
    ];
    grid_benches("fig6-full", &cfg, set, |c| c.clone())
}

/// The failures smoke grid's single-kill column: Basic, LL and PCS at
/// 80 req/s on the compact 6-node cluster, replaying the same outage the
/// pinned `failures --smoke` report uses.
fn failures_smoke_benches() -> Vec<EventLoopBench> {
    let params = SweepParams {
        seed: 62019,
        smoke: true,
        ..SweepParams::default()
    };
    let cfg = base_grid(&params, &[100.0]);
    let set = vec![techniques::basic(), techniques::ll(), techniques::pcs()];
    grid_benches("failures-smoke", &cfg, set, |sim| {
        let mut sim = sim.clone();
        sim.node_count = scenarios::failures::FAIL_NODE_COUNT;
        sim.faults = scenarios::failures::fault_plan(
            "single-kill",
            pcs_harness::seed::mix(fig6::rate_seed(62019, sim.arrival_rate), 0),
            &sim,
        );
        sim
    })
}

/// Expands a grid config into one bench per (rate, technique) cell.
///
/// # Panics
/// Panics if the grid would produce two cells with the same name — the
/// `--baseline` speedup join is by name, so a multi-rate grid must put
/// the rate in the family label rather than alias silently.
fn grid_benches(
    family: &str,
    cfg: &Fig6Config,
    set: Vec<TechniqueRef>,
    adapt: impl Fn(&SimConfig) -> SimConfig,
) -> Vec<EventLoopBench> {
    let models = train_models(cfg);
    let mut out: Vec<EventLoopBench> = Vec::new();
    for &rate in &cfg.rates {
        for technique in &set {
            let sim = fig6::cell_config(cfg, rate);
            let name = format!("{family}/{}", technique.name());
            assert!(
                out.iter().all(|b| b.name != name),
                "duplicate bench name `{name}`: a multi-rate grid must encode the rate in the \
                 family label (names key the --baseline speedup join)"
            );
            out.push(EventLoopBench {
                name,
                rate,
                config: adapt(&sim),
                technique: technique.clone(),
                models: models.clone(),
                epsilon_secs: cfg.epsilon_secs,
            });
        }
    }
    out
}

/// Stages of the scheduler-cost synthetic service (deep-chain-like:
/// narrow stage maxima, so the greedy finds real migrations).
const SCHED_STAGES: usize = 8;

/// Scheduling intervals timed per scheduler-cost row.
const SCHED_INTERVALS: usize = 4;

/// Nodes per rack of the synthetic cluster (matches the `scale`
/// scenario's rack shape).
const SCHED_NODES_PER_RACK: usize = 20;

/// Group cap of the hierarchical rows (the `hier` registry default).
const SCHED_GROUP_CAP: usize = 64;

/// The synthetic cluster the scheduler-cost benches maintain a matrix
/// over: `size` components packed on the first `size / 2` nodes, the
/// other half spare migration targets carrying only background (batch)
/// load. Between intervals only a rotating handful of **spare** nodes'
/// background demand drifts ([`sched_drift`]) — the steady-state regime
/// Algorithm 2 targets: topology and placements fixed, a few nodes'
/// external load moves. An incremental refresh then re-evaluates just
/// the dirtied columns, while a flat rebuild always pays all `m·k`
/// entries; resident components' own estimates are untouched so the
/// Eq. 4 overall is bit-stable and the refresh never has to fall back
/// to a full rebuild.
fn sched_inputs(size: usize, seed: u64) -> MatrixInputs {
    assert!(size >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let packed = size / 2;
    let capacity = NodeCapacity::XEON_E5645;
    let mut nodes: Vec<NodeInput> = (0..size)
        .map(|j| {
            let load: f64 = rng.gen::<f64>() * 4.0;
            NodeInput {
                id: NodeId::from_index(j),
                capacity,
                demand: ResourceVector::new(load, load * 2.0, load * 12.0, load * 6.0),
                samples: vec![],
            }
        })
        .collect();
    let components: Vec<ComponentInput> = (0..size)
        .map(|i| {
            let node = NodeId::from_index(i % packed);
            let demand = ResourceVector::new(0.8, 2.0, 6.0, 2.0);
            nodes[node.index()].demand += demand;
            ComponentInput {
                id: ComponentId::from_index(i),
                class: 0,
                stage: i % SCHED_STAGES,
                node,
                demand,
                arrival_rate: 50.0,
                scv: 1.0,
            }
        })
        .collect();
    MatrixInputs {
        nodes,
        components,
        stage_count: SCHED_STAGES,
    }
}

/// Interval `t`'s monitored drift: ~10% of the spare nodes (rotating
/// with `t`) report a new background demand. Resident components are
/// untouched, so this is exactly the partial-refresh case.
fn sched_drift(inputs: &mut MatrixInputs, t: usize) {
    let size = inputs.nodes.len();
    let packed = size / 2;
    let spare = size - packed;
    let changed = (spare / 10).max(1);
    for c in 0..changed {
        let j = packed + (t * changed + c) % spare;
        let load = 0.5 + 0.35 * ((t + c) % 7) as f64;
        inputs.nodes[j].demand = ResourceVector::new(load, load * 2.0, load * 12.0, load * 6.0);
    }
}

/// Components grouped by the rack of their home node (the level-1 walk
/// of the two-level scheduler, racks of [`SCHED_NODES_PER_RACK`]).
fn sched_rack_groups(inputs: &MatrixInputs) -> Vec<Vec<usize>> {
    let racks = inputs.nodes.len().div_ceil(SCHED_NODES_PER_RACK);
    let mut groups = vec![Vec::new(); racks];
    for (i, c) in inputs.components.iter().enumerate() {
        groups[c.node.index() / SCHED_NODES_PER_RACK].push(i);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// One scheduler-cost row.
struct SchedRow {
    name: String,
    size: usize,
    wall_ms: f64,
    entries: u64,
    migrations: u64,
    iterations: u64,
}

impl SchedRow {
    fn to_json(&self) -> Json {
        let intervals = SCHED_INTERVALS as f64;
        Json::object(vec![
            ("bench".into(), Json::from(self.name.clone())),
            ("nodes".into(), Json::from(self.size)),
            ("components".into(), Json::from(self.size)),
            ("intervals".into(), Json::from(SCHED_INTERVALS)),
            ("wall_ms".into(), Json::Num(self.wall_ms)),
            (
                "ms_per_interval".into(),
                Json::Num(self.wall_ms / intervals),
            ),
            (
                "entries_per_interval".into(),
                Json::Num(self.entries as f64 / intervals),
            ),
            ("migrations".into(), Json::from(self.migrations)),
            ("greedy_iterations".into(), Json::from(self.iterations)),
        ])
    }
}

/// The per-interval cost of maintaining and running the scheduler, flat
/// vs hierarchical, at growing cluster sizes (`m = k = size`).
///
/// * `scheduler/flat@N` — every interval rebuilds the full matrix and
///   runs the global greedy, the baseline controller's loop.
/// * `scheduler/hier@N` — one build up front (excluded from the timed
///   region: the controller pays it once per run, not per interval),
///   then every interval incrementally refreshes the carried matrix,
///   clones it, and runs the rack-grouped bounded greedy — the
///   `PCS-H` controller's loop.
///
/// Both variants replay the identical drift sequence, so wall-clock and
/// the deterministic `entries_per_interval` are directly comparable.
fn scheduler_benches(smoke: bool, repeats: usize) -> Vec<SchedRow> {
    let sizes: &[usize] = if smoke { &[100] } else { &[100, 400, 1000] };
    let models = fig7::synthetic_models();
    let config = SchedulerConfig {
        epsilon_secs: 0.0001,
        max_migrations: None,
        full_rebuild: false,
    };
    let matrix_config = MatrixConfig::default();
    let mut rows = Vec::new();
    for &size in sizes {
        let seed = 62015 + size as u64;

        eprintln!("bench: scheduler/flat@{size} ...");
        let scheduler = ComponentScheduler::new(config);
        let mut flat = SchedRow {
            name: format!("scheduler/flat@{size}"),
            size,
            wall_ms: f64::INFINITY,
            entries: (size * size * SCHED_INTERVALS) as u64,
            migrations: 0,
            iterations: 0,
        };
        for _ in 0..repeats {
            let mut inputs = sched_inputs(size, seed);
            let started = Instant::now();
            let (mut migrations, mut iterations) = (0u64, 0u64);
            for t in 0..SCHED_INTERVALS {
                sched_drift(&mut inputs, t);
                let mut matrix = PerformanceMatrix::build(&inputs, &models, matrix_config);
                let outcome = scheduler.run(&mut matrix);
                migrations += outcome.decisions.len() as u64;
                iterations += outcome.iterations as u64;
            }
            flat.wall_ms = flat.wall_ms.min(started.elapsed().as_secs_f64() * 1e3);
            flat.migrations = migrations;
            flat.iterations = iterations;
        }
        rows.push(flat);

        eprintln!("bench: scheduler/hier@{size} ...");
        let hier_scheduler = HierarchicalScheduler::new(config, SCHED_GROUP_CAP);
        let mut hier = SchedRow {
            name: format!("scheduler/hier@{size}"),
            size,
            wall_ms: f64::INFINITY,
            entries: 0,
            migrations: 0,
            iterations: 0,
        };
        for _ in 0..repeats {
            let mut inputs = sched_inputs(size, seed);
            let groups = sched_rack_groups(&inputs);
            let allowed = vec![true; size];
            let mut carried = PerformanceMatrix::build(&inputs, &models, matrix_config);
            let started = Instant::now();
            let (mut entries, mut migrations, mut iterations) = (0u64, 0u64, 0u64);
            for t in 0..SCHED_INTERVALS {
                sched_drift(&mut inputs, t);
                entries += carried.refresh(&inputs).entries_recomputed as u64;
                let mut matrix = carried.clone();
                let outcome = hier_scheduler.run_grouped(&mut matrix, &groups, &allowed, 0);
                migrations += outcome.decisions.len() as u64;
                iterations += outcome.iterations as u64;
            }
            hier.wall_ms = hier.wall_ms.min(started.elapsed().as_secs_f64() * 1e3);
            hier.entries = entries;
            hier.migrations = migrations;
            hier.iterations = iterations;
        }
        rows.push(hier);
    }
    rows
}

/// Shard counts of the parallel-engine rows (0 = the serial engine).
fn parallel_shard_grid(smoke: bool) -> &'static [usize] {
    if smoke {
        &[0, 1, 2]
    } else {
        &[0, 1, 2, 4, 8]
    }
}

/// Cluster sizes of the parallel-engine rows.
fn parallel_sizes(smoke: bool) -> &'static [usize] {
    if smoke {
        &[40]
    } else {
        &[100, 400, 1000]
    }
}

/// The intra-run parallel-engine section: the scale scenario's
/// deep-chain/diurnal cell through the serial engine (`shards = 0`) and
/// through the sharded LP engine at growing shard counts, on identical
/// configs. `speedup_vs_serial` divides the serial row's wall-clock by
/// the LP row's — on a single-core host the LP engine runs its
/// cooperative executor and the interesting number is its overhead, not
/// a speedup; the report records `host_cpus` so readers can tell which
/// regime a row measured.
fn parallel_benches(smoke: bool, repeats: usize) -> Vec<Json> {
    let mut cfg = Fig6Config {
        seed: 62021,
        rates: vec![25.0],
        ..Fig6Config::default()
    };
    if smoke {
        cfg.search_vm_budget = 8;
    }
    let models = train_models(&cfg);
    let technique = techniques::pcs_hier(SCHED_GROUP_CAP);
    let mut rows = Vec::new();
    for &size in parallel_sizes(smoke) {
        let mut serial_wall = None;
        for &shards in parallel_shard_grid(smoke) {
            let engine = if shards == 0 {
                "serial".to_string()
            } else {
                format!("lp{shards}")
            };
            let name = format!("parallel/{engine}@{size}");
            eprintln!("bench: {name} ...");
            let config = scenarios::scale::bench_config(size, shards, smoke, cfg.seed);
            let mut wall_ms = f64::INFINITY;
            let mut events = 0u64;
            for _ in 0..repeats {
                let started = Instant::now();
                let report = fig6::run_cell_with_epsilon(
                    &config,
                    technique.as_ref(),
                    &models,
                    cfg.epsilon_secs,
                );
                wall_ms = wall_ms.min(started.elapsed().as_secs_f64() * 1e3);
                // Both engines are deterministic: every repeat of one row
                // handles the same events (counts differ *across* engines,
                // whose event vocabularies differ).
                debug_assert!(events == 0 || events == report.events_processed);
                events = report.events_processed;
            }
            if shards == 0 {
                serial_wall = Some(wall_ms);
            }
            let events_per_sec = if wall_ms > 0.0 {
                events as f64 / (wall_ms / 1e3)
            } else {
                0.0
            };
            rows.push(Json::object(vec![
                ("bench".into(), Json::from(name)),
                ("nodes".into(), Json::from(size)),
                ("shards".into(), Json::from(shards)),
                ("events".into(), Json::from(events)),
                ("wall_ms".into(), Json::Num(wall_ms)),
                ("events_per_sec".into(), Json::Num(events_per_sec)),
                (
                    "speedup_vs_serial".into(),
                    serial_wall.map(|s| ratio(s, wall_ms)).unwrap_or(Json::Null),
                ),
            ]));
        }
    }
    rows
}

/// The elastic-capacity section: the elastic scenario's `steady`-preset
/// diurnal cell through each evacuation capability, on identical traces.
/// Beside the usual wall-clock/events-per-sec, each row carries the
/// run's deterministic `node_hours` — the subsystem's cost metric — so
/// a bench report also witnesses the headline ordering (PCS bills the
/// fewest node-hours because its batched evacuation completes drains
/// fastest).
fn elastic_benches(smoke: bool, repeats: usize) -> Vec<Json> {
    let params = SweepParams {
        seed: 62022,
        smoke,
        ..SweepParams::default()
    };
    let cfg = base_grid(&params, &[100.0]);
    let models = train_models(&cfg);
    let set = vec![techniques::basic(), techniques::ll(), techniques::pcs()];
    let rate = cfg.rates[0];
    let mut rows = Vec::new();
    for technique in &set {
        let name = format!("elastic/{}", technique.name());
        eprintln!("bench: {name} @ ~{rate} req/s ...");
        let config = scenarios::elastic::bench_cell_config(&cfg, rate);
        let mut wall_ms = f64::INFINITY;
        let mut events = 0u64;
        let mut node_hours = 0.0;
        for _ in 0..repeats {
            let started = Instant::now();
            let report =
                fig6::run_cell_with_epsilon(&config, technique.as_ref(), &models, cfg.epsilon_secs);
            wall_ms = wall_ms.min(started.elapsed().as_secs_f64() * 1e3);
            // Deterministic sim: every repeat handles the same events and
            // bills the same fleet.
            debug_assert!(events == 0 || events == report.events_processed);
            events = report.events_processed;
            node_hours = report.autoscale.node_hours();
        }
        let events_per_sec = if wall_ms > 0.0 {
            events as f64 / (wall_ms / 1e3)
        } else {
            0.0
        };
        rows.push(Json::object(vec![
            ("bench".into(), Json::from(name)),
            ("rate".into(), Json::Num(rate)),
            ("events".into(), Json::from(events)),
            ("wall_ms".into(), Json::Num(wall_ms)),
            ("events_per_sec".into(), Json::Num(events_per_sec)),
            ("node_hours".into(), Json::Num(node_hours)),
        ]));
    }
    rows
}

/// The imperfect-information section: each technique's clean cell and
/// its degraded-input counterpart (the `moderate` level's gray rack +
/// kill-restore outage, noisy failure detector, and — for PCS — the
/// level's prediction-noise σ), replaying exactly the scenario's cells.
/// Beside wall-clock/events-per-sec, each row carries the run's
/// deterministic `p99_ms` and `requests_lost`, so a bench report also
/// witnesses the graceful-degradation headline (noisy PCS still beats
/// the baselines on both axes at the moderate level).
fn imperfect_benches(smoke: bool, repeats: usize) -> Vec<Json> {
    let params = SweepParams {
        seed: 62024,
        smoke,
        ..SweepParams::default()
    };
    let cfg = scenarios::imperfect::bench_grid(&params);
    let models = train_models(&cfg);
    let rate = cfg.rates[0];
    let mut rows = Vec::new();
    for level in ["clean", "moderate"] {
        let (config, sigma) = scenarios::imperfect::bench_cell_config(&cfg, rate, level);
        let set = vec![
            techniques::basic(),
            techniques::ll(),
            if sigma > 0.0 {
                techniques::pcs_noisy(sigma)
            } else {
                techniques::pcs()
            },
        ];
        for technique in &set {
            let name = format!("imperfect/{level}/{}", technique.name());
            eprintln!("bench: {name} @ {rate} req/s ...");
            let mut wall_ms = f64::INFINITY;
            let mut events = 0u64;
            let mut p99_ms = 0.0;
            let mut requests_lost = 0u64;
            for _ in 0..repeats {
                let started = Instant::now();
                let report = fig6::run_cell_with_epsilon(
                    &config,
                    technique.as_ref(),
                    &models,
                    cfg.epsilon_secs,
                );
                wall_ms = wall_ms.min(started.elapsed().as_secs_f64() * 1e3);
                // Deterministic sim: every repeat replays the same trace.
                debug_assert!(events == 0 || events == report.events_processed);
                events = report.events_processed;
                p99_ms = report.component_p99_ms();
                requests_lost = report.faults.stats.requests_lost;
            }
            let events_per_sec = if wall_ms > 0.0 {
                events as f64 / (wall_ms / 1e3)
            } else {
                0.0
            };
            rows.push(Json::object(vec![
                ("bench".into(), Json::from(name)),
                ("rate".into(), Json::Num(rate)),
                ("level".into(), Json::from(level)),
                ("events".into(), Json::from(events)),
                ("wall_ms".into(), Json::Num(wall_ms)),
                ("events_per_sec".into(), Json::Num(events_per_sec)),
                ("p99_ms".into(), Json::Num(p99_ms)),
                ("requests_lost".into(), Json::from(requests_lost)),
            ]));
        }
    }
    rows
}

/// The observability section: the pinned fig6 smoke PCS cell with the
/// observe layer off and on. Both rows replay the identical trace (the
/// layer consumes no randomness and schedules no events — the event
/// counts must match), so the wall-clock difference is exactly the
/// bookkeeping cost of timelines + attribution + series + audits, and
/// `overhead_vs_off` quantifies it.
fn observe_benches(repeats: usize) -> Vec<Json> {
    let params = SweepParams {
        seed: 62015,
        smoke: true,
        ..SweepParams::default()
    };
    let cfg = base_grid(&params, &[10.0, 20.0, 50.0, 100.0, 200.0, 500.0]);
    let models = train_models(&cfg);
    let technique = techniques::pcs();
    let rate = cfg.rates[0];
    let mut rows = Vec::new();
    let mut off_wall = None;
    let mut off_events = 0u64;
    for (name, top_k) in [("observe/off", None), ("observe/on", Some(5usize))] {
        eprintln!("bench: {name} @ {rate} req/s ...");
        let mut config = fig6::cell_config(&cfg, rate);
        config.observe = top_k.map(|top_k| pcs_sim::ObserveConfig { top_k });
        let mut wall_ms = f64::INFINITY;
        let mut events = 0u64;
        for _ in 0..repeats {
            let started = Instant::now();
            let report =
                fig6::run_cell_with_epsilon(&config, technique.as_ref(), &models, cfg.epsilon_secs);
            wall_ms = wall_ms.min(started.elapsed().as_secs_f64() * 1e3);
            debug_assert!(events == 0 || events == report.events_processed);
            events = report.events_processed;
        }
        match top_k {
            None => {
                off_wall = Some(wall_ms);
                off_events = events;
            }
            Some(_) => debug_assert_eq!(
                events, off_events,
                "the observe layer must schedule no events"
            ),
        }
        let events_per_sec = if wall_ms > 0.0 {
            events as f64 / (wall_ms / 1e3)
        } else {
            0.0
        };
        rows.push(Json::object(vec![
            ("bench".into(), Json::from(name)),
            ("rate".into(), Json::Num(rate)),
            ("top_k".into(), top_k.map(Json::from).unwrap_or(Json::Null)),
            ("events".into(), Json::from(events)),
            ("wall_ms".into(), Json::Num(wall_ms)),
            ("events_per_sec".into(), Json::Num(events_per_sec)),
            (
                "overhead_vs_off".into(),
                match (top_k, off_wall) {
                    // on/off: > 1 means the layer cost wall-clock.
                    (Some(_), Some(off)) => ratio(wall_ms, off),
                    _ => Json::Null,
                },
            ),
        ]));
    }
    rows
}

/// Runs the bench suite and assembles the report.
///
/// Progress goes to stderr; the returned JSON is the report to write.
pub fn run(params: &BenchParams) -> Result<Json, String> {
    let repeats = params.repeats.max(1);

    // Resolve the scenario selection up front so a typo fails before any
    // measurement work happens.
    let registry = scenarios::registry();
    let selected: Vec<&dyn pcs_harness::Scenario> = match &params.scenarios {
        Some(names) => {
            let mut picked = Vec::new();
            for name in names {
                let scenario = registry
                    .iter()
                    .find(|s| s.name() == name)
                    .ok_or_else(|| format!("unknown scenario `{name}` in --scenarios"))?;
                picked.push(scenario.as_ref());
            }
            picked
        }
        None => registry.iter().map(|s| s.as_ref()).collect(),
    };

    // ---- event-loop benches ------------------------------------------
    let mut benches = fig6_smoke_benches();
    benches.extend(failures_smoke_benches());
    if !params.smoke {
        benches.extend(fig6_full_benches());
    }
    let mut event_loop = Vec::new();
    for bench in &benches {
        eprintln!("bench: {} @ {} req/s ...", bench.name, bench.rate);
        let mut wall_ms = f64::INFINITY;
        let mut events = 0u64;
        for _ in 0..repeats {
            let started = Instant::now();
            let report = fig6::run_cell_with_epsilon(
                &bench.config,
                bench.technique.as_ref(),
                &bench.models,
                bench.epsilon_secs,
            );
            let elapsed = started.elapsed().as_secs_f64() * 1e3;
            wall_ms = wall_ms.min(elapsed);
            // Deterministic sim: every repeat handles the same events.
            debug_assert!(events == 0 || events == report.events_processed);
            events = report.events_processed;
        }
        let events_per_sec = if wall_ms > 0.0 {
            events as f64 / (wall_ms / 1e3)
        } else {
            0.0
        };
        event_loop.push(Json::object(vec![
            ("bench".into(), Json::from(bench.name.clone())),
            ("rate".into(), Json::Num(bench.rate)),
            ("events".into(), Json::from(events)),
            ("wall_ms".into(), Json::Num(wall_ms)),
            ("events_per_sec".into(), Json::Num(events_per_sec)),
        ]));
    }

    // ---- scheduler-cost benches --------------------------------------
    let scheduler_rows: Vec<Json> = scheduler_benches(params.smoke, repeats)
        .iter()
        .map(SchedRow::to_json)
        .collect();

    // ---- parallel-engine benches -------------------------------------
    let parallel_rows = parallel_benches(params.smoke, repeats);

    // ---- elastic-capacity benches ------------------------------------
    let elastic_rows = elastic_benches(params.smoke, repeats);

    // ---- imperfect-information benches -------------------------------
    let imperfect_rows = imperfect_benches(params.smoke, repeats);

    // ---- observability benches ---------------------------------------
    let observe_rows = observe_benches(repeats);

    // ---- scenario sweeps ---------------------------------------------
    let mut scenario_rows = Vec::new();
    for scenario in selected {
        eprintln!("bench: scenario {} --smoke ...", scenario.name());
        let sweep_params = SweepParams {
            seed: scenario.default_seed(),
            threads: params.threads,
            smoke: true,
            ..SweepParams::default()
        };
        // Plan once (shared setup like model training is amortised across
        // cells in real runs, so it stays outside the timed region).
        let plan = scenario.plan(&sweep_params);
        let cells = plan.cells.len();
        let mut wall_ms = f64::INFINITY;
        for _ in 0..repeats {
            let started = Instant::now();
            let outcome = run_sweep(&plan, &sweep_params);
            wall_ms = wall_ms.min(started.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(outcome);
        }
        scenario_rows.push(Json::object(vec![
            ("scenario".into(), Json::from(scenario.name())),
            ("cells".into(), Json::from(cells)),
            ("wall_ms".into(), Json::Num(wall_ms)),
            (
                "ms_per_cell".into(),
                Json::Num(if cells > 0 {
                    wall_ms / cells as f64
                } else {
                    0.0
                }),
            ),
        ]));
    }

    // ---- report ------------------------------------------------------
    let mut report = vec![
        ("schema".into(), Json::from(SCHEMA)),
        ("label".into(), Json::from(params.label.clone())),
        ("smoke".into(), Json::Bool(params.smoke)),
        ("repeats".into(), Json::from(repeats)),
        ("threads".into(), Json::from(params.threads)),
        // The parallel section's speedups only mean "parallel speedup"
        // when the host actually has cores to spread shards over.
        (
            "host_cpus".into(),
            Json::from(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
        ),
        ("event_loop".into(), Json::Array(event_loop)),
        ("scheduler".into(), Json::Array(scheduler_rows)),
        ("parallel".into(), Json::Array(parallel_rows)),
        ("elastic".into(), Json::Array(elastic_rows)),
        ("imperfect".into(), Json::Array(imperfect_rows)),
        ("observe".into(), Json::Array(observe_rows)),
        ("scenarios".into(), Json::Array(scenario_rows)),
    ];
    if let Some(baseline) = &params.baseline {
        report.push(("speedup".into(), speedup_section(&report, baseline)?));
        report.push((
            "baseline".into(),
            Json::object(vec![
                (
                    "label".into(),
                    baseline.get("label").cloned().unwrap_or(Json::Null),
                ),
                (
                    "event_loop".into(),
                    baseline.get("event_loop").cloned().unwrap_or(Json::Null),
                ),
                (
                    "scenarios".into(),
                    baseline.get("scenarios").cloned().unwrap_or(Json::Null),
                ),
            ]),
        ));
    }
    Ok(Json::object(report))
}

/// Joins current and baseline entries by name and emits per-entry
/// speedups plus the two headline aggregates (fig6 smoke grid, failures
/// scenario).
fn speedup_section(current: &[(String, Json)], baseline: &Json) -> Result<Json, String> {
    if baseline.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!(
            "--baseline report has an unknown schema (want {SCHEMA})"
        ));
    }
    let section = |key: &str| -> &[Json] {
        current
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_array())
            .unwrap_or(&[])
    };
    let wall_of = |rows: &[Json], key: &str, name: &str| -> Option<f64> {
        rows.iter()
            .find(|row| row.get(key).and_then(Json::as_str) == Some(name))
            .and_then(|row| row.get("wall_ms"))
            .and_then(Json::as_f64)
    };
    let base_events: &[Json] = baseline
        .get("event_loop")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    let base_scenarios: &[Json] = baseline
        .get("scenarios")
        .and_then(Json::as_array)
        .unwrap_or(&[]);

    let mut rows = Vec::new();
    let mut fig6_smoke = RatioAccum::default();
    for row in section("event_loop") {
        let Some(name) = row.get("bench").and_then(Json::as_str) else {
            continue;
        };
        let Some(now) = row.get("wall_ms").and_then(Json::as_f64) else {
            continue;
        };
        let Some(base) = wall_of(base_events, "bench", name) else {
            continue;
        };
        if name.starts_with("fig6-smoke/") {
            fig6_smoke.add(base, now);
        }
        rows.push(Json::object(vec![
            ("bench".into(), Json::from(name)),
            ("baseline_wall_ms".into(), Json::Num(base)),
            ("wall_ms".into(), Json::Num(now)),
            ("speedup".into(), ratio(base, now)),
        ]));
    }
    let mut scenario_rows = Vec::new();
    let mut failures = RatioAccum::default();
    for row in section("scenarios") {
        let Some(name) = row.get("scenario").and_then(Json::as_str) else {
            continue;
        };
        let Some(now) = row.get("wall_ms").and_then(Json::as_f64) else {
            continue;
        };
        let Some(base) = wall_of(base_scenarios, "scenario", name) else {
            continue;
        };
        if name == "failures" {
            failures.add(base, now);
        }
        scenario_rows.push(Json::object(vec![
            ("scenario".into(), Json::from(name)),
            ("baseline_wall_ms".into(), Json::Num(base)),
            ("wall_ms".into(), Json::Num(now)),
            ("speedup".into(), ratio(base, now)),
        ]));
    }
    Ok(Json::object(vec![
        ("fig6_smoke_grid".into(), fig6_smoke.speedup()),
        ("failures_scenario".into(), failures.speedup()),
        ("event_loop".into(), Json::Array(rows)),
        ("scenarios".into(), Json::Array(scenario_rows)),
    ]))
}

/// Sums baseline and current wall-clock for one aggregate speedup.
#[derive(Default)]
struct RatioAccum {
    base: f64,
    now: f64,
}

impl RatioAccum {
    fn add(&mut self, base: f64, now: f64) {
        self.base += base;
        self.now += now;
    }
    fn speedup(&self) -> Json {
        ratio(self.base, self.now)
    }
}

fn ratio(base: f64, now: f64) -> Json {
    if now > 0.0 && base > 0.0 {
        Json::Num(base / now)
    } else {
        Json::Null
    }
}

/// Validates a bench report: parses, checks the schema, and requires the
/// scenario section to cover every registered scenario family with
/// numeric wall-clock (the CI gate behind `pcs bench --check`).
pub fn check_report(text: &str) -> Result<(), String> {
    let report = Json::parse(text).map_err(|e| format!("report does not parse: {e}"))?;
    if report.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema is not {SCHEMA}"));
    }
    let scenario_rows = report
        .get("scenarios")
        .and_then(Json::as_array)
        .ok_or("report has no scenarios array")?;
    for scenario in scenarios::registry() {
        let row = scenario_rows
            .iter()
            .find(|row| row.get("scenario").and_then(Json::as_str) == Some(scenario.name()))
            .ok_or_else(|| format!("scenario family `{}` missing from report", scenario.name()))?;
        let wall = row.get("wall_ms").and_then(Json::as_f64);
        if !wall.is_some_and(|w| w.is_finite() && w >= 0.0) {
            return Err(format!(
                "scenario `{}` has no finite wall_ms",
                scenario.name()
            ));
        }
    }
    let event_rows = report
        .get("event_loop")
        .and_then(Json::as_array)
        .ok_or("report has no event_loop array")?;
    if event_rows.is_empty() {
        return Err("event_loop section is empty".into());
    }
    for row in event_rows {
        let rate = row.get("events_per_sec").and_then(Json::as_f64);
        if !rate.is_some_and(|r| r.is_finite() && r > 0.0) {
            return Err(format!(
                "event-loop bench `{}` has no positive events_per_sec",
                row.get("bench")
                    .and_then(Json::as_str)
                    .unwrap_or("<unnamed>")
            ));
        }
    }
    // The parallel section must cover both engines: the serial baseline
    // (shards = 0) and at least one genuinely sharded LP run.
    let parallel_rows = report
        .get("parallel")
        .and_then(Json::as_array)
        .ok_or("report has no parallel array")?;
    let covered = |want: &dyn Fn(f64) -> bool| {
        parallel_rows.iter().any(|row| {
            row.get("shards").and_then(Json::as_f64).is_some_and(want)
                && row
                    .get("wall_ms")
                    .and_then(Json::as_f64)
                    .is_some_and(|w| w.is_finite() && w > 0.0)
        })
    };
    if !covered(&|s| s == 0.0) {
        return Err("parallel section has no serial-engine (shards = 0) row".into());
    }
    if !covered(&|s| s >= 2.0) {
        return Err("parallel section has no multi-shard (shards >= 2) row".into());
    }
    // The elastic section must witness the autoscaler actually billing a
    // fleet: every row needs a positive, finite node-hours figure.
    let elastic_rows = report
        .get("elastic")
        .and_then(Json::as_array)
        .ok_or("report has no elastic array")?;
    if elastic_rows.is_empty() {
        return Err("elastic section is empty".into());
    }
    for row in elastic_rows {
        let hours = row.get("node_hours").and_then(Json::as_f64);
        if !hours.is_some_and(|h| h.is_finite() && h > 0.0) {
            return Err(format!(
                "elastic bench `{}` has no positive node_hours",
                row.get("bench")
                    .and_then(Json::as_str)
                    .unwrap_or("<unnamed>")
            ));
        }
    }
    // The imperfect section must witness both sides of the degradation
    // comparison: every technique's clean cell and its degraded-input
    // counterpart, each a real timed run.
    let imperfect_rows = report
        .get("imperfect")
        .and_then(Json::as_array)
        .ok_or("report has no imperfect array")?;
    for level in ["clean", "moderate"] {
        let row = imperfect_rows
            .iter()
            .find(|row| row.get("level").and_then(Json::as_str) == Some(level))
            .ok_or_else(|| format!("imperfect section has no `{level}`-level row"))?;
        let wall = row.get("wall_ms").and_then(Json::as_f64);
        if !wall.is_some_and(|w| w.is_finite() && w > 0.0) {
            return Err(format!(
                "imperfect bench `{}` has no positive wall_ms",
                row.get("bench")
                    .and_then(Json::as_str)
                    .unwrap_or("<unnamed>")
            ));
        }
    }

    // The observe section must witness both sides of the zero-cost
    // claim: an instrumentation-off row (the regression sentinel against
    // the previous PR's baseline) and an instrumentation-on row.
    let observe_rows = report
        .get("observe")
        .and_then(Json::as_array)
        .ok_or("report has no observe array")?;
    for name in ["observe/off", "observe/on"] {
        let row = observe_rows
            .iter()
            .find(|row| row.get("bench").and_then(Json::as_str) == Some(name))
            .ok_or_else(|| format!("observe section has no `{name}` row"))?;
        let wall = row.get("wall_ms").and_then(Json::as_f64);
        if !wall.is_some_and(|w| w.is_finite() && w > 0.0) {
            return Err(format!("observe bench `{name}` has no positive wall_ms"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> BenchParams {
        BenchParams {
            smoke: true,
            scenarios: Some(vec!["ablation-rebuild".into()]),
            repeats: 1,
            threads: 1,
            label: "test".into(),
            baseline: None,
        }
    }

    #[test]
    fn bench_report_covers_requested_sections_and_checks_fail_without_full_coverage() {
        let report = run(&tiny_params()).expect("bench runs");
        assert_eq!(report.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let events = report.get("event_loop").and_then(Json::as_array).unwrap();
        // fig6 smoke grid (3 techniques) + failures smoke grid (3).
        assert_eq!(events.len(), 6);
        for row in events {
            assert!(
                row.get("events").and_then(Json::as_f64).unwrap() > 0.0,
                "every bench cell must process events"
            );
        }
        // Smoke parallel grid: serial + LP at 1 and 2 shards, one size.
        let parallel = report.get("parallel").and_then(Json::as_array).unwrap();
        assert_eq!(parallel.len(), 3);
        let shard_of = |row: &Json| row.get("shards").and_then(Json::as_f64).unwrap();
        assert_eq!(shard_of(&parallel[0]), 0.0);
        assert_eq!(shard_of(&parallel[2]), 2.0);
        for row in parallel {
            assert!(row.get("events").and_then(Json::as_f64).unwrap() > 0.0);
        }
        // Elastic section: one row per evacuation capability, each
        // billing a real fleet.
        let elastic = report.get("elastic").and_then(Json::as_array).unwrap();
        assert_eq!(elastic.len(), 3);
        for row in elastic {
            assert!(row.get("events").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(row.get("node_hours").and_then(Json::as_f64).unwrap() > 0.0);
        }
        // Imperfect section: per technique, a clean cell and its
        // degraded-input counterpart — the gray rack, the outage and the
        // noisy detector only make the moderate rows lose requests.
        let imperfect = report.get("imperfect").and_then(Json::as_array).unwrap();
        assert_eq!(imperfect.len(), 6);
        let level_of = |row: &Json| row.get("level").and_then(Json::as_str).unwrap().to_string();
        assert!(imperfect[..3].iter().all(|r| level_of(r) == "clean"));
        assert!(imperfect[3..].iter().all(|r| level_of(r) == "moderate"));
        for row in imperfect {
            assert!(row.get("events").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(row.get("p99_ms").and_then(Json::as_f64).unwrap() > 0.0);
        }
        let lost_of = |row: &Json| row.get("requests_lost").and_then(Json::as_f64).unwrap();
        assert!(imperfect[..3].iter().all(|r| lost_of(r) == 0.0));
        assert!(
            imperfect[3..].iter().any(|r| lost_of(r) > 0.0),
            "the moderate outage must cost some technique requests"
        );
        // Observe section: the same pinned cell off and on, identical
        // event counts (the layer schedules nothing), overhead ratio on
        // the on-row only.
        let observe = report.get("observe").and_then(Json::as_array).unwrap();
        assert_eq!(observe.len(), 2);
        let name_of = |row: &Json| row.get("bench").and_then(Json::as_str).unwrap().to_string();
        assert_eq!(name_of(&observe[0]), "observe/off");
        assert_eq!(name_of(&observe[1]), "observe/on");
        let events_of = |row: &Json| row.get("events").and_then(Json::as_f64).unwrap();
        assert!(events_of(&observe[0]) > 0.0);
        assert_eq!(events_of(&observe[0]), events_of(&observe[1]));
        assert!(observe[0]
            .get("overhead_vs_off")
            .unwrap()
            .as_f64()
            .is_none());
        assert!(observe[1]
            .get("overhead_vs_off")
            .and_then(Json::as_f64)
            .unwrap()
            .is_finite());
        // One scenario only → --check must reject the partial report.
        let rendered = report.render();
        let err = check_report(&rendered).unwrap_err();
        assert!(err.contains("missing from report"), "{err}");
    }

    #[test]
    fn speedup_joins_by_name() {
        let mk = |wall: f64| {
            Json::object(vec![
                ("schema".into(), Json::from(SCHEMA)),
                ("label".into(), Json::from("x")),
                (
                    "event_loop".into(),
                    Json::Array(vec![Json::object(vec![
                        ("bench".into(), Json::from("fig6-smoke/Basic")),
                        ("wall_ms".into(), Json::Num(wall)),
                    ])]),
                ),
                (
                    "scenarios".into(),
                    Json::Array(vec![Json::object(vec![
                        ("scenario".into(), Json::from("failures")),
                        ("wall_ms".into(), Json::Num(wall)),
                    ])]),
                ),
            ])
        };
        let current = mk(10.0);
        let current_pairs = match &current {
            Json::Object(pairs) => pairs.clone(),
            _ => unreachable!(),
        };
        let section = speedup_section(&current_pairs, &mk(30.0)).expect("joins");
        let fig6 = section.get("fig6_smoke_grid").and_then(Json::as_f64);
        assert!((fig6.unwrap() - 3.0).abs() < 1e-12);
        let failures = section.get("failures_scenario").and_then(Json::as_f64);
        assert!((failures.unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn check_rejects_garbage() {
        assert!(check_report("not json").is_err());
        assert!(check_report("{\"schema\":\"other\"}").is_err());
    }

    /// The load-bearing claim of the scheduler section: under the
    /// steady-state drift (spare-node background load moves, placements
    /// and resident estimates do not), the incremental refresh
    /// re-evaluates a small fraction of the matrix while the flat loop
    /// always pays all m·k entries — and the refreshed matrix plus the
    /// grouped greedy still find real migrations.
    #[test]
    fn hierarchical_maintenance_recomputes_a_fraction_of_the_matrix() {
        let rows = scheduler_benches(true, 1);
        assert_eq!(rows.len(), 2);
        let flat = &rows[0];
        let hier = &rows[1];
        assert!(flat.name.starts_with("scheduler/flat@"));
        assert!(hier.name.starts_with("scheduler/hier@"));
        assert_eq!(flat.entries, (100 * 100 * SCHED_INTERVALS) as u64);
        assert!(
            hier.entries * 4 < flat.entries,
            "incremental refresh must recompute < 25% of the flat rebuild's entries, \
             got {} vs {}",
            hier.entries,
            flat.entries
        );
        assert!(flat.migrations > 0 && hier.migrations > 0);
        assert!(flat.iterations > 0 && hier.iterations > 0);
    }

    /// The refresh the hier rows time is bit-identical to a fresh build
    /// on the same drifted inputs (the Algorithm 2 contract, re-checked
    /// here on the bench's own input shape).
    #[test]
    fn sched_drift_refresh_matches_full_build() {
        let models = fig7::synthetic_models();
        let mut inputs = sched_inputs(60, 7);
        let mut carried = PerformanceMatrix::build(&inputs, &models, MatrixConfig::default());
        for t in 0..3 {
            sched_drift(&mut inputs, t);
            let stats = carried.refresh(&inputs);
            assert!(stats.entries_recomputed < stats.entries_total);
            let fresh = PerformanceMatrix::build(&inputs, &models, MatrixConfig::default());
            for i in 0..60 {
                for j in 0..60 {
                    let (i, j) = (ComponentId::from_index(i), NodeId::from_index(j));
                    assert_eq!(
                        carried.gain(i, j).to_bits(),
                        fresh.gain(i, j).to_bits(),
                        "refresh must be bit-identical to build at ({i:?}, {j:?})"
                    );
                }
            }
        }
    }
}
