//! The PCS controller: the paper's full framework assembled.
//!
//! [`PcsController`] implements the simulator's
//! [`SchedulerHook`]: at every scheduling interval
//! it converts the monitors' observations into
//! [`MatrixInputs`], builds the performance matrix,
//! runs the greedy Algorithm 1, and returns the accepted migrations. It
//! never reads the simulator's ground truth — only sampled contention,
//! estimated arrival rates, and observed service-time variability, exactly
//! like the real system would.

use pcs_core::{
    ClassModelSet, ComponentInput, ComponentScheduler, HierarchicalScheduler, MatrixConfig,
    MatrixInputs, MigrationDecision, NodeInput, PerformanceMatrix, PredictionMode, ScheduleOutcome,
    SchedulerConfig, ThresholdPolicy,
};
use pcs_monitor::SamplerConfig;
use pcs_queueing::distributions::{LogNormal, ServiceDistribution};
use pcs_regression::TrainingConfig;
use pcs_sim::profiler::profile_class;
use pcs_sim::{
    AuditDecision, IntervalAudit, MigrationRequest, SchedulerContext, SchedulerCost, SchedulerHook,
};
use pcs_types::{ContentionVector, NodeCapacity, NodeId, PcsError, ResourceVector};
use pcs_workloads::{BatchWorkload, JobSpec, ServiceTopology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The contention attributed to a dead node when building matrix inputs:
/// far beyond any trained operating point, so every prediction there
/// saturates at the model's worst case. Components stranded on a dead
/// node look maximally slow (evacuating them has maximal gain) and dead
/// destinations look maximally unattractive — liveness-awareness falls
/// out of the same Eq. 1/Eq. 2 machinery that handles overload.
const DEAD_NODE_CONTENTION: ContentionVector = ContentionVector {
    core_usage: 16.0,
    cache_mpki: 400.0,
    disk_util: 16.0,
    net_util: 16.0,
};

/// Relative change below which the hierarchical mode considers a
/// monitored estimate unchanged and reuses the previous interval's value
/// bit-for-bit. Sampling noise wiggles every estimate a little every
/// interval; feeding those wiggles to [`PerformanceMatrix::refresh`]
/// would dirty every row and defeat the incremental maintenance, so small
/// moves are frozen until they accumulate past this dead-band. The flat
/// controller re-estimates everything every interval and is unaffected.
const ESTIMATE_HYSTERESIS: f64 = 0.05;

/// True when `a` and `b` are within the estimate dead-band of each other.
fn near(a: f64, b: f64) -> bool {
    (a - b).abs() <= ESTIMATE_HYSTERESIS * a.abs().max(b.abs())
}

/// Seed salt of the prediction-noise RNG lane (`pcs-n<σ>` techniques).
/// Mixed with the σ bit pattern so distinct noise levels draw distinct,
/// well-spread streams; the lane is independent of the run seed, so a
/// given technique applies the *same* error trajectory to every cell of a
/// sweep — the degradation curve varies the error magnitude, not the
/// error sample.
const SALT_PREDICTION_NOISE: u64 = 0x5eed_0006;

/// Seeded multiplicative error on the controller's demand estimates: one
/// mean-one log-normal factor per live node per interval. Models an
/// imperfect predictor/monitor pipeline whose estimates are unbiased but
/// dispersed with parameter σ (of the underlying normal).
#[derive(Debug, Clone)]
struct DemandNoise {
    dist: LogNormal,
    rng: SmallRng,
}

impl DemandNoise {
    fn new(sigma: f64) -> Self {
        // Mean-one: scv = exp(σ²) − 1 under `with_mean_scv`.
        let dist = LogNormal::with_mean_scv(1.0, (sigma * sigma).exp_m1());
        let rng = SmallRng::seed_from_u64(pcs_harness::seed::mix(
            SALT_PREDICTION_NOISE,
            sigma.to_bits(),
        ));
        DemandNoise { dist, rng }
    }

    fn draw(&mut self) -> f64 {
        self.dist.sample(&mut self.rng)
    }
}

/// Component-wise [`near`] over a demand vector.
fn near_vec(a: &ResourceVector, b: &ResourceVector) -> bool {
    near(a.cores, b.cores)
        && near(a.mpki, b.mpki)
        && near(a.disk_mbps, b.disk_mbps)
        && near(a.net_mbps, b.net_mbps)
}

/// The PCS scheduling framework: monitors → predictor → matrix → greedy
/// migrations.
#[derive(Debug, Clone)]
pub struct PcsController {
    models: ClassModelSet,
    scheduler_config: SchedulerConfig,
    matrix_config: MatrixConfig,
    /// How ε is chosen per interval; `None` uses the scheduler config's
    /// fixed value.
    threshold: Option<ThresholdPolicy>,
    /// When set, every component's SCV is overridden with this value in
    /// the matrix inputs — forcing 1.0 turns the Eq. 2 M/G/1 term into
    /// the M/M/1 special case (the queueing-model ablation).
    scv_override: Option<f64>,
    /// When true, node demand comes from the simulator's exact
    /// [`SchedulerContext::ground_truth_demand`] instead of the noisy
    /// sampled windows — the oracle upper bound on what better monitoring
    /// and prediction could buy.
    ground_truth: bool,
    /// Seeded multiplicative noise on every live node's demand estimate
    /// (`pcs-n<σ>`): the controlled *lower* direction of the same axis —
    /// how gracefully the scheduling algorithm degrades as its inputs get
    /// worse. `None` (σ = 0) leaves the estimates untouched.
    demand_noise: Option<DemandNoise>,
    /// Last known mean demand per node, carried across intervals for nodes
    /// whose sampling window came back empty.
    last_node_demand: Vec<ResourceVector>,
    /// Two-level hierarchical mode: per-group component cap (paper §VI-D).
    /// `None` (the default) is the flat Algorithm 1 controller.
    hier_group_cap: Option<usize>,
    /// Carried performance matrix for the hierarchical mode's incremental
    /// refresh. Kept pristine — the controller schedules on a clone, so
    /// this copy never sees speculative migration state and the next
    /// interval's [`PerformanceMatrix::refresh`] diffs against exactly
    /// what the monitors reported last time.
    carried: Option<PerformanceMatrix>,
    /// The (post-hysteresis) inputs behind `carried`, used to freeze
    /// estimates that have not moved past the dead-band.
    carried_inputs: Option<MatrixInputs>,
    /// Per-node demand versions at the previous interval: an unchanged
    /// version proves the node's demand composition is unchanged, so its
    /// estimate is reused without any comparison.
    last_versions: Vec<u64>,
    /// Per-node liveness at the previous interval (the version shortcut
    /// only applies to nodes that stayed up across the interval).
    last_up: Vec<bool>,
    /// Deterministic work counters surfaced via [`SchedulerHook::cost`].
    cost: SchedulerCost,
    /// Whether each analysed interval builds an [`IntervalAudit`]
    /// (predicted Eq. 4 gain per enacted decision). Turned on by the
    /// observability layer via [`SchedulerHook::enable_audit`], or by the
    /// `PCS_DEBUG_CONTROLLER` environment variable.
    audit_enabled: bool,
    /// When true (the `PCS_DEBUG_CONTROLLER` alias), every built audit is
    /// also printed to stderr.
    audit_print: bool,
    /// The audit of the interval that just ran, awaiting collection via
    /// [`SchedulerHook::take_interval_audit`].
    pending_audit: Option<IntervalAudit>,
    /// Outcomes of every interval, newest last (diagnostics).
    history: Vec<ScheduleOutcome>,
}

impl PcsController {
    /// Creates a controller from trained class models.
    pub fn new(
        models: ClassModelSet,
        scheduler_config: SchedulerConfig,
        matrix_config: MatrixConfig,
    ) -> Self {
        // Validate the config eagerly (ComponentScheduler::new panics on
        // nonsense) even though the scheduler is rebuilt per interval.
        let _ = ComponentScheduler::new(scheduler_config);
        let audit_print = std::env::var_os("PCS_DEBUG_CONTROLLER").is_some();
        PcsController {
            models,
            scheduler_config,
            matrix_config,
            threshold: None,
            scv_override: None,
            ground_truth: false,
            demand_noise: None,
            last_node_demand: Vec::new(),
            hier_group_cap: None,
            carried: None,
            carried_inputs: None,
            last_versions: Vec::new(),
            last_up: Vec::new(),
            cost: SchedulerCost::default(),
            audit_enabled: audit_print,
            audit_print,
            pending_audit: None,
            history: Vec::new(),
        }
    }

    /// Chooses ε adaptively per interval (the paper's noted future-work
    /// extension): ε = policy.resolve(predicted overall latency).
    #[must_use]
    pub fn with_threshold_policy(mut self, policy: ThresholdPolicy) -> Self {
        self.threshold = Some(policy);
        self
    }

    /// Overrides every component's service-time SCV in the matrix inputs
    /// (1.0 forces the M/M/1 special case of Eq. 2).
    #[must_use]
    pub fn with_scv_override(mut self, scv: f64) -> Self {
        assert!(scv.is_finite() && scv >= 0.0, "SCV must be non-negative");
        self.scv_override = Some(scv);
        self
    }

    /// Feeds the controller the simulator's exact per-node demand
    /// ([`SchedulerContext::ground_truth_demand`]) instead of the noisy
    /// sampled contention windows. This is the `oracle` technique: an
    /// upper bound isolating how much of PCS's remaining gap comes from
    /// monitoring noise rather than from the scheduling algorithm.
    #[must_use]
    pub fn with_ground_truth(mut self) -> Self {
        self.ground_truth = true;
        self
    }

    /// Multiplies every live node's demand estimate with seeded mean-one
    /// log-normal noise of parameter `sigma` (one fresh factor per node
    /// per interval, on a dedicated RNG lane). This is the `pcs-n<σ>`
    /// technique family: a controlled sweep of prediction quality between
    /// the `oracle` upper bound and arbitrarily bad inputs, measuring how
    /// gracefully PCS degrades. `sigma = 0` is a provable no-op — no
    /// noise object is built and no draws are made, so reports stay
    /// byte-identical to plain `pcs`.
    ///
    /// # Panics
    /// Panics unless `sigma` is finite and non-negative.
    #[must_use]
    pub fn with_demand_noise(mut self, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "demand-noise sigma must be finite and non-negative, got {sigma}"
        );
        if sigma > 0.0 {
            self.demand_noise = Some(DemandNoise::new(sigma));
        }
        self
    }

    /// Switches the controller to the two-level hierarchical mode (paper
    /// §VI-D): components are grouped by the *rack* of their current host
    /// and scheduled rack by rack with the bounded greedy
    /// ([`HierarchicalScheduler::run_grouped`]), and the performance
    /// matrix is maintained incrementally across intervals
    /// ([`PerformanceMatrix::refresh`]) — refreshing only rows and
    /// columns whose node state actually changed — instead of rebuilt
    /// from scratch every interval.
    ///
    /// # Panics
    /// Panics on a zero group cap.
    #[must_use]
    pub fn with_hierarchical(mut self, group_cap: usize) -> Self {
        // Reuse HierarchicalScheduler's validation eagerly.
        let _ = HierarchicalScheduler::new(self.scheduler_config, group_cap);
        self.hier_group_cap = Some(group_cap);
        self
    }

    /// Runs the offline profiling campaign for a topology and trains one
    /// Eq. 1 model per component class (paper §VI-D: one profiled
    /// component per homogeneous class).
    ///
    /// The profiling schedule co-locates the profiled component with every
    /// catalog workload across a log-spaced input grid plus two-job
    /// combinations, covering the contention range the scheduler will later
    /// encounter.
    ///
    /// # Errors
    /// Propagates training failures (insufficient or degenerate samples).
    pub fn train_for(
        topology: &ServiceTopology,
        capacity: NodeCapacity,
        seed: u64,
    ) -> Result<ClassModelSet, PcsError> {
        let schedule = default_profiling_schedule();
        let mut class_sets = Vec::with_capacity(topology.classes().len());
        for class_idx in 0..topology.classes().len() {
            class_sets.push(profile_class(
                topology.classes(),
                class_idx,
                capacity,
                &schedule,
                24,
                40,
                SamplerConfig::PAPER,
                seed.wrapping_add(class_idx as u64),
            ));
        }
        let config = TrainingConfig {
            degree: 3,
            ..TrainingConfig::default()
        };
        let (models, _report) = pcs_core::train_class_models(&class_sets, config, 0.0)?;
        Ok(models)
    }

    /// Scheduling outcomes of every interval so far (newest last).
    pub fn history(&self) -> &[ScheduleOutcome] {
        &self.history
    }

    /// Total migrations ordered across all intervals.
    pub fn total_migrations(&self) -> usize {
        self.history.iter().map(|o| o.decisions.len()).sum()
    }

    /// Converts one interval's monitoring context into matrix inputs.
    ///
    /// Node demand comes from the *mean of the interval's sampled
    /// contention* (denormalised into demand units); empty windows fall
    /// back to the previous interval's estimate.
    fn build_inputs(&mut self, ctx: &SchedulerContext<'_>) -> MatrixInputs {
        let k = ctx.node_capacities.len();
        if self.last_node_demand.len() != k {
            self.last_node_demand = vec![ResourceVector::ZERO; k];
        }
        let mut nodes = Vec::with_capacity(k);
        for j in 0..k {
            let window = &ctx.sampled_windows[j];
            // Dead nodes get a saturated demand regardless of monitoring
            // mode (the ground truth of a dead node reads near-idle — its
            // jobs vanished — which is exactly the wrong signal to hand a
            // placement algorithm). `last_node_demand` keeps the final
            // live estimate so a restored node re-enters smoothly.
            let mut demand = if !ctx.node_status[j].is_up() {
                ctx.node_capacities[j].denormalize(&DEAD_NODE_CONTENTION)
            } else if self.ground_truth {
                ctx.ground_truth_demand[j]
            } else if window.is_empty() {
                self.last_node_demand[j]
            } else {
                let mut mean = ContentionVector::ZERO;
                for s in window {
                    mean = mean + *s;
                }
                let mean = mean.scaled(1.0 / window.len() as f64);
                ctx.node_capacities[j].denormalize(&mean)
            };
            if ctx.node_status[j].is_up() {
                // Carry the *clean* estimate so empty-window fallbacks do
                // not compound error factors across intervals; each
                // interval's estimate gets exactly one fresh factor.
                self.last_node_demand[j] = demand;
                if let Some(noise) = &mut self.demand_noise {
                    demand = demand.scaled(noise.draw());
                }
            }
            nodes.push(NodeInput {
                id: pcs_types::NodeId::from_index(j),
                capacity: ctx.node_capacities[j],
                demand,
                samples: window.clone(),
            });
        }
        let components = ctx
            .components
            .iter()
            .enumerate()
            .map(|(i, meta)| ComponentInput {
                id: pcs_types::ComponentId::from_index(i),
                class: meta.class,
                stage: meta.stage,
                node: meta.node,
                demand: meta.own_demand,
                arrival_rate: ctx.arrival_rates[i],
                scv: self.scv_override.unwrap_or(ctx.service_scv[i]),
            })
            .collect();
        MatrixInputs {
            nodes,
            components,
            stage_count: ctx.stage_count,
        }
    }

    /// Builds (and, under `PCS_DEBUG_CONTROLLER`, prints) the interval's
    /// decision audit from the enacted decisions: the predicted Eq. 4
    /// overall latency at analysis time plus the predicted gain of every
    /// migration actually ordered. The observer assigns the interval
    /// index and fills the realised next-window delta at run end.
    fn record_audit(
        &mut self,
        ctx: &SchedulerContext<'_>,
        predicted_overall: f64,
        decisions: &[MigrationDecision],
    ) {
        if !self.audit_enabled {
            return;
        }
        let audit = IntervalAudit {
            at: ctx.now,
            interval: 0,
            predicted_overall,
            decisions: decisions
                .iter()
                .filter(|d| !ctx.components[d.component.index()].migrating)
                .map(|d| AuditDecision {
                    component: d.component,
                    from: d.from,
                    to: d.to,
                    predicted_gain: d.predicted_gain,
                    predicted_self_gain: d.predicted_self_gain,
                })
                .collect(),
            realized_delta: None,
        };
        if self.audit_print {
            eprintln!("{audit}");
        }
        self.pending_audit = Some(audit);
    }

    /// Evacuation pass: components stranded on dead nodes leave first,
    /// before the latency-optimising greedy. The greedy alone cannot
    /// be trusted with them — with two orphans in one parallel stage,
    /// moving either leaves the stage max at the other's saturated
    /// latency, so every single move shows ~zero *overall* gain and
    /// Algorithm 1 would strand both. Each orphan instead goes to the
    /// live node with the best predicted latency for it (the matrix's
    /// self-gain column), applied through the same incremental update
    /// so later placements see earlier ones; the moves consume the
    /// interval's migration budget. Evacuated components are cleared
    /// from `candidates` so the greedy cannot move them again.
    fn evacuate_orphans(
        &self,
        ctx: &SchedulerContext<'_>,
        config: &SchedulerConfig,
        matrix: &mut PerformanceMatrix,
        candidates: &mut [bool],
    ) -> Vec<MigrationDecision> {
        let mut evacuations: Vec<MigrationDecision> = Vec::new();
        for meta in ctx.components {
            if ctx.node_status[meta.node.index()].is_up() || meta.migrating {
                continue;
            }
            if let Some(cap) = config.max_migrations {
                if evacuations.len() >= cap {
                    break;
                }
            }
            let i = meta.id;
            // Only destinations the world will accept: live and not
            // hosting one of the orphan's replica-group peers (a
            // rejected order would be retried fruitlessly forever).
            let mut best: Option<(f64, NodeId)> = None;
            for j in 0..ctx.node_capacities.len() {
                if !ctx.legal_destination(i, j) {
                    continue;
                }
                let dest = NodeId::from_index(j);
                let self_gain = matrix.self_gain(i, dest);
                if best.is_none_or(|(s, _)| self_gain > s) {
                    best = Some((self_gain, dest));
                }
            }
            let Some((_, dest)) = best else { continue }; // nowhere legal for this orphan
            candidates[i.index()] = false;
            let gain = matrix.gain(i, dest);
            let self_gain = matrix.self_gain(i, dest);
            let from = matrix.apply_migration(i, dest, candidates);
            evacuations.push(MigrationDecision {
                component: i,
                from,
                to: dest,
                predicted_gain: gain,
                predicted_self_gain: self_gain,
            });
        }
        evacuations
    }

    /// One hierarchical-mode interval: freeze estimates inside the
    /// dead-band, refresh the carried matrix incrementally, then schedule
    /// rack by rack on a clone.
    fn on_interval_hier(
        &mut self,
        ctx: &SchedulerContext<'_>,
        group_cap: usize,
    ) -> Vec<MigrationRequest> {
        let mut inputs = self.build_inputs(ctx);
        // Mean-contention predictions never read the sample windows, so
        // drop them from the inputs: a freshly drained window every
        // interval would otherwise mark every node changed and defeat
        // the incremental refresh.
        if self.matrix_config.mode != PredictionMode::PerSample {
            for n in &mut inputs.nodes {
                n.samples.clear();
            }
        }
        // Freeze estimates that have not moved meaningfully since the
        // previous interval, so the refresh's dirty set tracks *real*
        // change instead of sampling noise. A node whose demand version
        // is untouched provably has the same demand composition (no job
        // started or finished, no component moved, no monitor update) —
        // reuse its estimate without comparing anything.
        if let Some(prev) = &self.carried_inputs {
            if prev.node_count() == inputs.node_count()
                && prev.component_count() == inputs.component_count()
            {
                for (j, node) in inputs.nodes.iter_mut().enumerate() {
                    let stayed_up =
                        ctx.node_status[j].is_up() && self.last_up.get(j).copied().unwrap_or(false);
                    let same_version = self.last_versions.get(j) == Some(&ctx.demand_versions[j]);
                    if (stayed_up && same_version) || near_vec(&node.demand, &prev.nodes[j].demand)
                    {
                        node.demand = prev.nodes[j].demand;
                    }
                }
                for (i, comp) in inputs.components.iter_mut().enumerate() {
                    let prev_c = &prev.components[i];
                    if near_vec(&comp.demand, &prev_c.demand) {
                        comp.demand = prev_c.demand;
                    }
                    if near(comp.arrival_rate, prev_c.arrival_rate) {
                        comp.arrival_rate = prev_c.arrival_rate;
                    }
                    if near(comp.scv, prev_c.scv) {
                        comp.scv = prev_c.scv;
                    }
                }
            }
        }
        self.last_versions = ctx.demand_versions.to_vec();
        self.last_up = ctx.node_status.iter().map(|s| s.is_up()).collect();

        let mk = (inputs.component_count() * inputs.node_count()) as u64;
        self.cost.intervals += 1;
        self.cost.entries_total += mk;
        let compatible = self.carried.as_ref().is_some_and(|m| {
            m.component_count() == inputs.component_count() && m.node_count() == inputs.node_count()
        });
        if compatible {
            let stats = self
                .carried
                .as_mut()
                .expect("checked above")
                .refresh(&inputs);
            self.cost.matrix_refreshes += 1;
            self.cost.entries_recomputed += stats.entries_recomputed as u64;
        } else {
            self.carried = Some(PerformanceMatrix::build(
                &inputs,
                &self.models,
                self.matrix_config,
            ));
            self.cost.matrix_builds += 1;
            self.cost.entries_recomputed += mk;
        }
        self.carried_inputs = Some(inputs);

        // Schedule on a clone: apply_migration below is speculative (the
        // world may still reject or delay moves), and next interval's
        // refresh must diff against the monitors' view, not against the
        // speculation.
        let mut matrix = self
            .carried
            .as_ref()
            .expect("carried matrix initialised above")
            .clone();
        let predicted_overall = matrix.overall_latency();
        let mut config = self.scheduler_config;
        if let Some(policy) = self.threshold {
            config.epsilon_secs = policy.resolve(matrix.overall_latency());
        }
        let mut candidates = vec![true; ctx.components.len()];
        let evacuations = self.evacuate_orphans(ctx, &config, &mut matrix, &mut candidates);

        // Level 1 walks racks; level 2 is the bounded greedy within each
        // rack's component group (components grouped by the rack of
        // their current host). On a single-rack cluster this degrades to
        // plain cap-sized grouping.
        let groups: Vec<Vec<usize>> =
            if ctx.rack_of.len() == ctx.node_capacities.len() && !ctx.rack_of.is_empty() {
                let rack_count = ctx.rack_of.iter().copied().max().unwrap_or(0) + 1;
                let mut by_rack: Vec<Vec<usize>> = vec![Vec::new(); rack_count];
                for (i, meta) in ctx.components.iter().enumerate() {
                    by_rack[ctx.rack_of[meta.node.index()]].push(i);
                }
                by_rack.retain(|g| !g.is_empty());
                by_rack
            } else {
                vec![(0..ctx.components.len()).collect()]
            };
        let mut outcome = HierarchicalScheduler::new(config, group_cap).run_grouped(
            &mut matrix,
            &groups,
            &candidates,
            evacuations.len(),
        );
        self.cost.greedy_iterations += outcome.iterations as u64;
        outcome.decisions.splice(0..0, evacuations);
        let migrations = outcome
            .decisions
            .iter()
            .filter(|d| !ctx.components[d.component.index()].migrating)
            .map(|d| MigrationRequest {
                component: d.component,
                to: d.to,
            })
            .collect();
        self.record_audit(ctx, predicted_overall, &outcome.decisions);
        self.history.push(outcome);
        migrations
    }
}

impl SchedulerHook for PcsController {
    fn on_interval(&mut self, ctx: &SchedulerContext<'_>) -> Vec<MigrationRequest> {
        // Nothing monitored yet (first tick on a quiet cluster): wait —
        // unless a node is already down, in which case the evacuation
        // pass below must run even on cold monitors.
        if ctx.sampled_windows.iter().all(|w| w.is_empty())
            && ctx.node_status.iter().all(|s| s.is_up())
        {
            return Vec::new();
        }
        if let Some(group_cap) = self.hier_group_cap {
            return self.on_interval_hier(ctx, group_cap);
        }
        let inputs = self.build_inputs(ctx);
        let mut matrix = PerformanceMatrix::build(&inputs, &self.models, self.matrix_config);
        let mk = (inputs.component_count() * inputs.node_count()) as u64;
        self.cost.intervals += 1;
        self.cost.matrix_builds += 1;
        self.cost.entries_recomputed += mk;
        self.cost.entries_total += mk;
        let predicted_overall = matrix.overall_latency();
        let mut config = self.scheduler_config;
        if let Some(policy) = self.threshold {
            config.epsilon_secs = policy.resolve(matrix.overall_latency());
        }

        let mut candidates = vec![true; ctx.components.len()];
        let evacuations = self.evacuate_orphans(ctx, &config, &mut matrix, &mut candidates);

        let mut outcome = ComponentScheduler::new(config).run_masked(
            &mut matrix,
            &mut candidates,
            evacuations.len(),
        );
        self.cost.greedy_iterations += outcome.iterations as u64;
        outcome.decisions.splice(0..0, evacuations);
        let migrations = outcome
            .decisions
            .iter()
            .filter(|d| !ctx.components[d.component.index()].migrating)
            .map(|d| MigrationRequest {
                component: d.component,
                to: d.to,
            })
            .collect();
        self.record_audit(ctx, predicted_overall, &outcome.decisions);
        self.history.push(outcome);
        migrations
    }

    fn cost(&self) -> Option<SchedulerCost> {
        Some(self.cost)
    }

    fn enable_audit(&mut self) {
        self.audit_enabled = true;
    }

    fn take_interval_audit(&mut self) -> Option<IntervalAudit> {
        self.pending_audit.take()
    }
}

/// The default profiling schedule: every catalog workload over a
/// log-spaced input grid (VM-capped at 4 cores, as in the paper's §VI-B
/// setup), all two-workload combinations at a medium size, three-job
/// stacks reaching node overload, and the idle point.
///
/// Runtime nodes can host several batch VMs at once, so the training range
/// must extend into oversubscription — a regression that never saw
/// core-usage > 1 would underestimate straggler latency exactly when the
/// scheduler needs it most.
pub fn default_profiling_schedule() -> Vec<ResourceVector> {
    let mut schedule = vec![ResourceVector::ZERO];
    let sizes = [8.0, 64.0, 256.0, 1024.0, 3072.0, 10_240.0];
    for w in BatchWorkload::ALL {
        for mb in sizes {
            schedule.push(
                JobSpec::new(w, mb)
                    .capped_to_vm(4.0)
                    .capped_io(67.0, 42.0)
                    .demand,
            );
        }
    }
    // Two-job co-locations widen the upper contention range.
    for (i, a) in BatchWorkload::ALL.iter().enumerate() {
        for b in BatchWorkload::ALL.iter().skip(i) {
            let d1 = JobSpec::new(*a, 2048.0)
                .capped_to_vm(4.0)
                .capped_io(67.0, 42.0)
                .demand;
            let d2 = JobSpec::new(*b, 2048.0)
                .capped_to_vm(4.0)
                .capped_io(67.0, 42.0)
                .demand;
            schedule.push(d1 + d2);
        }
    }
    // Three-job stacks: push core usage to ~1 and beyond and disk/net into
    // their saturated regimes.
    for a in BatchWorkload::ALL {
        let d = JobSpec::new(a, 8192.0)
            .capped_to_vm(4.0)
            .capped_io(67.0, 42.0)
            .demand;
        schedule.push(d.scaled(3.0));
    }
    for (a, b, c) in [
        (
            BatchWorkload::HadoopBayes,
            BatchWorkload::HadoopWordCount,
            BatchWorkload::SparkSort,
        ),
        (
            BatchWorkload::HadoopPageIndex,
            BatchWorkload::SparkBayes,
            BatchWorkload::SparkWordCount,
        ),
    ] {
        let sum = JobSpec::new(a, 8192.0)
            .capped_to_vm(4.0)
            .capped_io(67.0, 42.0)
            .demand
            + JobSpec::new(b, 8192.0)
                .capped_to_vm(4.0)
                .capped_io(67.0, 42.0)
                .demand
            + JobSpec::new(c, 8192.0)
                .capped_to_vm(4.0)
                .capped_io(67.0, 42.0)
                .demand;
        schedule.push(sum);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_sim::{SimConfig, Simulation};
    use pcs_types::SimDuration;

    #[test]
    fn profiling_schedule_covers_a_wide_range() {
        let schedule = default_profiling_schedule();
        assert!(schedule.len() > 40);
        let max_cores = schedule.iter().map(|d| d.cores).fold(0.0, f64::max);
        let max_disk = schedule.iter().map(|d| d.disk_mbps).fold(0.0, f64::max);
        assert!(max_cores >= 6.0, "two-job points must stack CPU demand");
        assert!(max_disk >= 100.0, "I/O-heavy points must stress disk");
        assert_eq!(schedule[0], ResourceVector::ZERO);
    }

    #[test]
    fn trained_models_predict_contention_sensibly() {
        let topology = ServiceTopology::nutch(4);
        let models = PcsController::train_for(&topology, NodeCapacity::XEON_E5645, 11).unwrap();
        let searching = models.get(1).unwrap();
        let idle = searching.predict_clamped(&ContentionVector::new(0.1, 3.0, 0.05, 0.02));
        let busy = searching.predict_clamped(&ContentionVector::new(0.8, 20.0, 0.7, 0.5));
        assert!(
            busy > idle * 1.2,
            "trained model must see contention: idle {idle}, busy {busy}"
        );
    }

    #[test]
    fn controller_evacuates_every_orphan_in_one_interval() {
        use pcs_sim::{FaultEvent, FaultKind, FaultPlan};
        use pcs_types::{NodeId, SimTime};
        let topology = ServiceTopology::nutch(8);
        let models = PcsController::train_for(&topology, NodeCapacity::XEON_E5645, 5).unwrap();
        let controller = PcsController::new(
            models,
            pcs_core::SchedulerConfig {
                epsilon_secs: 0.00005,
                max_migrations: None,
                full_rebuild: false,
            },
            MatrixConfig::default(),
        );
        // 5 nodes for 10 components: anti-affine round-robin puts two
        // components on every node, so the kill strands a *pair* — the
        // exact case the greedy alone cannot evacuate (both in one stage
        // means every single move has ~zero overall gain).
        let mut config = SimConfig::paper_like(topology, 100.0, 21);
        config.node_count = 5;
        config.horizon = SimDuration::from_secs(20);
        config.warmup = SimDuration::from_secs(4);
        config.scheduler_interval = SimDuration::from_secs(2);
        config.faults = FaultPlan::new(vec![FaultEvent {
            at: SimTime::from_secs(7),
            node: NodeId::new(2),
            kind: FaultKind::Kill,
        }]);
        let report =
            Simulation::new(config, Box::new(pcs_sim::BasicPolicy), Box::new(controller)).run();
        assert_eq!(report.faults.stats.orphaned, 2);
        assert_eq!(
            report.faults.stats.evacuated, 2,
            "the evacuation pass must re-place both stranded components"
        );
        assert_eq!(report.faults.unresolved_orphans, 0);
        // Kill at 7 s, next interval at 8 s, migration takes 250 ms: both
        // orphans land in the same interval, so the worst evacuation
        // latency stays well under two intervals.
        let evac = report.faults.evacuation_ms().expect("evacuation done");
        assert!(
            evac < 2000.0,
            "batched evacuation must finish within one interval, got {evac} ms"
        );
    }

    /// The hybrid case: replication 2 with the predictive controller.
    /// Evacuations must both resolve every orphan and keep replica
    /// groups on distinct nodes (the peer-blind version of the
    /// evacuation pass could order a co-locating move every interval,
    /// have the world reject it, and strand the orphan forever).
    #[test]
    fn controller_evacuates_replicated_deployments_without_colocating() {
        use pcs_baselines::RedundancyPolicy;
        use pcs_sim::{DeploymentConfig, FaultEvent, FaultKind, FaultPlan};
        use pcs_types::{NodeId, SimTime};
        let topology = ServiceTopology::nutch(8);
        let models = PcsController::train_for(&topology, NodeCapacity::XEON_E5645, 5).unwrap();
        let controller = PcsController::new(
            models,
            pcs_core::SchedulerConfig {
                epsilon_secs: 0.00005,
                max_migrations: None,
                full_rebuild: false,
            },
            MatrixConfig::default(),
        );
        let mut config = SimConfig::paper_like(topology, 100.0, 33);
        config.node_count = 5;
        config.deployment = DeploymentConfig { replication: 2 };
        config.horizon = SimDuration::from_secs(20);
        config.warmup = SimDuration::from_secs(4);
        config.faults = FaultPlan::new(vec![FaultEvent {
            at: SimTime::from_secs(7),
            node: NodeId::new(1),
            kind: FaultKind::Kill,
        }]);
        let report = Simulation::new(
            config,
            Box::new(RedundancyPolicy::new(2)),
            Box::new(controller),
        )
        .run();
        assert!(report.faults.stats.orphaned >= 2);
        assert_eq!(
            report.faults.unresolved_orphans, 0,
            "peer-aware evacuation must re-place every orphan"
        );
        assert_eq!(
            report.faults.stats.evacuated, report.faults.stats.orphaned,
            "no orphan may wait for a restore that never comes"
        );
    }

    /// The hierarchical mode on a multi-rack cluster: rack-grouped greedy
    /// over an incrementally refreshed matrix must still find migrations,
    /// and the cost counters must show exactly one full build with every
    /// later interval served by a refresh.
    #[test]
    fn hierarchical_controller_schedules_and_refreshes_incrementally() {
        let topology = ServiceTopology::nutch(8);
        let models = PcsController::train_for(&topology, NodeCapacity::XEON_E5645, 5).unwrap();
        let controller = PcsController::new(
            models,
            pcs_core::SchedulerConfig {
                epsilon_secs: 0.00005,
                max_migrations: None,
                full_rebuild: false,
            },
            MatrixConfig::default(),
        )
        .with_hierarchical(64);
        let mut config = SimConfig::paper_like(topology, 100.0, 21);
        config.node_count = 10;
        config.rack_count = 2;
        config.placement = pcs_sim::PlacementStrategy::RackAware;
        config.horizon = SimDuration::from_secs(20);
        config.warmup = SimDuration::from_secs(4);
        config.scheduler_interval = SimDuration::from_secs(2);
        let report =
            Simulation::new(config, Box::new(pcs_sim::BasicPolicy), Box::new(controller)).run();
        assert!(report.stats.requests_completed > 500);
        assert!(
            report.stats.migrations > 0,
            "hierarchical PCS should migrate under batch churn"
        );
        let cost = report.scheduler_cost.expect("controller tracks cost");
        assert!(cost.intervals >= 2, "several intervals must run: {cost:?}");
        assert_eq!(cost.matrix_builds, 1, "only the first interval builds");
        assert_eq!(cost.matrix_refreshes, cost.intervals - 1);
        assert_eq!(cost.entries_total, cost.intervals * 10 * 10);
        assert!(cost.entries_recomputed <= cost.entries_total);
        assert!(cost.greedy_iterations > 0);
    }

    /// A small group cap (forcing several groups per interval) must not
    /// break the evacuation guarantee: every orphan of a killed node is
    /// still re-placed within one interval.
    #[test]
    fn hierarchical_controller_evacuates_every_orphan() {
        use pcs_sim::{FaultEvent, FaultKind, FaultPlan};
        use pcs_types::{NodeId, SimTime};
        let topology = ServiceTopology::nutch(8);
        let models = PcsController::train_for(&topology, NodeCapacity::XEON_E5645, 5).unwrap();
        let controller = PcsController::new(
            models,
            pcs_core::SchedulerConfig {
                epsilon_secs: 0.00005,
                max_migrations: None,
                full_rebuild: false,
            },
            MatrixConfig::default(),
        )
        .with_hierarchical(3);
        let mut config = SimConfig::paper_like(topology, 100.0, 21);
        config.node_count = 5;
        config.horizon = SimDuration::from_secs(20);
        config.warmup = SimDuration::from_secs(4);
        config.scheduler_interval = SimDuration::from_secs(2);
        config.faults = FaultPlan::new(vec![FaultEvent {
            at: SimTime::from_secs(7),
            node: NodeId::new(2),
            kind: FaultKind::Kill,
        }]);
        let report =
            Simulation::new(config, Box::new(pcs_sim::BasicPolicy), Box::new(controller)).run();
        assert_eq!(report.faults.stats.orphaned, 2);
        assert_eq!(report.faults.stats.evacuated, 2);
        assert_eq!(report.faults.unresolved_orphans, 0);
    }

    #[test]
    fn controller_schedules_migrations_end_to_end() {
        let topology = ServiceTopology::nutch(8);
        let models = PcsController::train_for(&topology, NodeCapacity::XEON_E5645, 5).unwrap();
        let controller = PcsController::new(
            models,
            pcs_core::SchedulerConfig {
                // Must sit below the ~1e-4 s gains a 10-node nutch(8)
                // scenario produces (fig6 uses 1e-6; 2e-4 silently
                // suppressed every migration).
                epsilon_secs: 0.00005,
                max_migrations: None,
                full_rebuild: false,
            },
            MatrixConfig::default(),
        );
        let mut config = SimConfig::paper_like(topology, 100.0, 21);
        config.node_count = 10;
        config.horizon = SimDuration::from_secs(20);
        config.warmup = SimDuration::from_secs(4);
        config.scheduler_interval = SimDuration::from_secs(2);
        let report =
            Simulation::new(config, Box::new(pcs_sim::BasicPolicy), Box::new(controller)).run();
        assert!(report.stats.requests_completed > 500);
        // Under churn, some interval should have found a worthwhile move.
        assert!(
            report.stats.migrations > 0,
            "PCS should migrate under batch churn"
        );
    }
}
