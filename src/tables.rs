//! Plain-text table rendering for experiment output.
//!
//! The bench binaries print the same rows/series the paper's tables and
//! figures report; this keeps the formatting in one place.

/// Renders a table: a header row plus data rows, columns padded to the
/// widest cell, separated by two spaces.
pub fn render(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    if cols == 0 {
        // A zero-column table renders as nothing (the separator width
        // `2 * (cols - 1)` would otherwise underflow).
        return String::new();
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Convenience: formats a float with the given decimals.
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let table = render(
            &["name".into(), "ms".into()],
            &[
                vec!["Basic".into(), "12.3".into()],
                vec!["RED-5".into(), "1400.0".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("ms"));
        assert!(lines[2].ends_with("12.3"));
        assert!(lines[3].ends_with("1400.0"));
    }

    #[test]
    fn empty_header_renders_empty() {
        // Regression: `2 * (cols - 1)` underflowed usize when cols == 0.
        assert_eq!(render(&[], &[]), "");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let _ = render(&["a".into()], &[vec!["x".into(), "y".into()]]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }
}
