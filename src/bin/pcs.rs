//! The single `pcs` CLI: runs any registered scenario through the shared
//! deterministic parallel sweep runner.
//!
//! ```text
//! pcs list [scenarios|techniques]
//! pcs run --scenario fig6 [--techniques basic,ll,pcs] [--rates 50,500]
//!         [--seed N] [--threads N] [--repeats N] [--smoke] [--json PATH]
//!         [--quiet]
//! ```
//!
//! Every experiment that used to be its own `pcs-bench` binary (fig5,
//! fig6, fig7, headline, the five ablations) is a scenario here, plus the
//! extended scenarios (`diurnal`, `hetero`, `mmpp`). The comparison
//! scenarios sweep the open technique registry, so `--techniques`
//! selects any registered set for any of them. Reports print as the same
//! plain-text tables the old binaries produced and, with `--json`, as a
//! machine-readable sweep report whose bytes are reproducible at a fixed
//! seed for every scenario without wall-clock metrics.

use pcs::bench;
use pcs::scenarios;
use pcs::tables;
use pcs::techniques;
use pcs_harness::{run_sweep, Json, SweepOutcome, SweepParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(args.get(1).map(String::as_str)),
        Some("run") => cmd_run(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{}", usage());
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            2
        }
    };
    std::process::exit(code);
}

fn usage() -> String {
    let mut out = String::from(
        "pcs - PCS (ICPP 2015) experiment harness\n\
         \n\
         USAGE:\n\
         \x20 pcs list [scenarios|techniques]   list the registries\n\
         \x20 pcs run --scenario <name>         run one scenario\n\
         \x20 pcs bench [--smoke]               measure the perf trajectory\n\
         \x20 pcs bench --check <path>          validate a bench report\n\
         \n\
         OPTIONS (run):\n\
         \x20 --scenario <name>    required; see `pcs list scenarios`\n\
         \x20 --techniques <a,b>   technique-set override (comparison sweeps);\n\
         \x20                      see `pcs list techniques`\n\
         \x20 --seed <u64>         base seed (default: the scenario's)\n\
         \x20 --threads <n>        worker threads (default: all cores)\n\
         \x20 --rates <a,b,c>      arrival-rate grid override, req/s\n\
         \x20 --repeats <n>        repeat count override (fig7)\n\
         \x20 --sizes <a,b,c>      cluster-size grid override, nodes (scale)\n\
         \x20 --group-cap <n>      PCS-H per-group component cap (scale)\n\
         \x20 --shards <n>         sharded intra-run engine, n logical processes\n\
         \x20                      (scale; omit for the serial engine)\n\
         \x20 --target-util <f>    autoscaler target utilisation in (0, 1] (elastic)\n\
         \x20 --cooldown <secs>    autoscaler cooldown between scale actions (elastic)\n\
         \x20 --detector-latency <secs>  failure-detector heartbeat timeout, pinned\n\
         \x20                      across all levels (imperfect)\n\
         \x20 --fp-rate <f>        detector false-positive rate in [0, 1] (imperfect)\n\
         \x20 --fn-rate <f>        detector false-negative rate in [0, 1] (imperfect)\n\
         \x20 --noise <sigma>      prediction-noise sigma for the PCS cells\n\
         \x20                      (imperfect; not with --techniques)\n\
         \x20 --observe            observability layer: request timelines, tail\n\
         \x20                      attribution, time-series, scheduler audits\n\
         \x20 --top-k <n>          slowest timelines retained per cell (default 5;\n\
         \x20                      requires --observe)\n\
         \x20 --trace-out <path>   write the retained timelines as Chrome trace-event\n\
         \x20                      JSON, loadable in Perfetto (requires --observe)\n\
         \x20 --smoke              tiny CI budgets (short horizon, small grid)\n\
         \x20 --json <path>        also write the machine-readable report\n\
         \x20 --quiet              suppress the cell table\n\
         \n\
         OPTIONS (bench):\n\
         \x20 --smoke              CI mode: smoke-grid cells, fewer repeats\n\
         \x20 --scenarios <a,b>    restrict the scenario-sweep section\n\
         \x20 --repeats <n>        measurement repeats (min wall-clock kept)\n\
         \x20 --threads <n>        worker threads for the sweeps\n\
         \x20 --label <text>       label recorded in the report (e.g. PR5)\n\
         \x20 --baseline <path>    previous bench report to compare against\n\
         \x20 --json <path>        write the bench report here\n\
         \x20 --check <path>       validate an existing report and exit\n",
    );
    out.push_str("\nSCENARIOS:\n");
    for scenario in scenarios::registry() {
        out.push_str(&format!(
            "  {:<20} {}\n",
            scenario.name(),
            scenario.description()
        ));
    }
    out.push_str("\nTECHNIQUES (any `red-<k>` / `ri-<p>` parses, e.g. ri-99.5):\n");
    for technique in techniques::registry() {
        out.push_str(&format!(
            "  {:<20} {}\n",
            technique.name().to_lowercase(),
            technique.description()
        ));
    }
    out
}

fn cmd_list(which: Option<&str>) -> i32 {
    let scenarios_section = || {
        for scenario in scenarios::registry() {
            println!("{:<20} {}", scenario.name(), scenario.description());
        }
    };
    let techniques_section = || {
        for technique in techniques::registry() {
            println!(
                "{:<20} {}",
                technique.name().to_lowercase(),
                technique.description()
            );
        }
    };
    match which {
        None => {
            println!("SCENARIOS:");
            scenarios_section();
            println!("\nTECHNIQUES (any `red-<k>` / `ri-<p>` parses, e.g. ri-99.5):");
            techniques_section();
        }
        Some("scenarios") => scenarios_section(),
        Some("techniques") => techniques_section(),
        Some(other) => {
            eprintln!("unknown registry `{other}`; use `scenarios` or `techniques`");
            return 2;
        }
    }
    0
}

struct RunArgs {
    scenario: String,
    params: SweepParams,
    seed_override: Option<u64>,
    json_path: Option<String>,
    trace_path: Option<String>,
    quiet: bool,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut scenario = None;
    let mut params = SweepParams::default();
    let mut seed_override = None;
    let mut json_path = None;
    let mut observe = false;
    let mut top_k = None;
    let mut trace_path = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => scenario = Some(value("--scenario")?),
            "--seed" => {
                seed_override = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--threads" => {
                let threads: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if threads == 0 {
                    return Err(
                        "--threads: must be at least 1 (0 workers would run no cells)".to_string(),
                    );
                }
                params.threads = threads;
            }
            "--repeats" => {
                let repeats: usize = value("--repeats")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
                if repeats == 0 {
                    return Err(
                        "--repeats: must be at least 1 (0 repeats would produce an empty report)"
                            .to_string(),
                    );
                }
                params.repeats = Some(repeats);
            }
            "--rates" => {
                let list = value("--rates")?;
                if list.trim().is_empty() {
                    return Err(
                        "--rates: expected a comma-separated list of at least one rate, got an \
                         empty list"
                            .to_string(),
                    );
                }
                let rates: Result<Vec<f64>, _> =
                    list.split(',').map(|r| r.trim().parse::<f64>()).collect();
                let rates = rates.map_err(|e| format!("--rates: {e}"))?;
                if let Some(bad) = rates.iter().find(|r| !r.is_finite() || **r <= 0.0) {
                    return Err(format!(
                        "--rates: rates must be finite and positive, got {bad}"
                    ));
                }
                params.rates = Some(rates);
            }
            "--techniques" => {
                let list = value("--techniques")?;
                // Validate here (with the registry's vocabulary in the
                // error) and hand scenarios the canonical names.
                let specs =
                    techniques::parse_list(&list).map_err(|e| format!("--techniques: {e}"))?;
                params.techniques = Some(specs.iter().map(|s| s.name()).collect());
            }
            "--group-cap" => {
                let cap: usize = value("--group-cap")?
                    .parse()
                    .map_err(|e| format!("--group-cap: {e}"))?;
                if !(1..=techniques::MAX_GROUP_CAP).contains(&cap) {
                    return Err(format!(
                        "--group-cap: must be in 1..={}, got {cap} (0 would forbid every group)",
                        techniques::MAX_GROUP_CAP
                    ));
                }
                params.group_cap = Some(cap);
            }
            "--shards" => {
                let shards: usize = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if shards == 0 {
                    return Err(
                        "--shards: must be at least 1 (omit the flag to run the serial engine)"
                            .to_string(),
                    );
                }
                params.shards = Some(shards);
            }
            "--sizes" => {
                let list = value("--sizes")?;
                if list.trim().is_empty() {
                    return Err(
                        "--sizes: expected a comma-separated list of at least one cluster size, \
                         got an empty list"
                            .to_string(),
                    );
                }
                let sizes: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse::<usize>()).collect();
                let sizes = sizes.map_err(|e| format!("--sizes: {e}"))?;
                if let Some(bad) = sizes.iter().find(|s| **s < scenarios::scale::MIN_NODES) {
                    return Err(format!(
                        "--sizes: cluster sizes must be >= {} nodes, got {bad}",
                        scenarios::scale::MIN_NODES
                    ));
                }
                params.sizes = Some(sizes);
            }
            "--target-util" => {
                let target: f64 = value("--target-util")?
                    .parse()
                    .map_err(|e| format!("--target-util: {e}"))?;
                if !(target > 0.0 && target <= 1.0) {
                    return Err(format!(
                        "--target-util: target utilisation must be in (0, 1], got {target}"
                    ));
                }
                params.target_util = Some(target);
            }
            "--cooldown" => {
                let secs: f64 = value("--cooldown")?
                    .parse()
                    .map_err(|e| format!("--cooldown: {e}"))?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(format!(
                        "--cooldown: must be a positive number of seconds, got {secs} \
                         (a zero cooldown would let the controller thrash every window)"
                    ));
                }
                params.cooldown_secs = Some(secs);
            }
            "--detector-latency" => {
                let secs: f64 = value("--detector-latency")?
                    .parse()
                    .map_err(|e| format!("--detector-latency: {e}"))?;
                if !(secs.is_finite() && secs >= 0.0) {
                    return Err(format!(
                        "--detector-latency: must be a non-negative number of seconds, got {secs}"
                    ));
                }
                params.detector_latency_secs = Some(secs);
            }
            "--fp-rate" => {
                let rate: f64 = value("--fp-rate")?
                    .parse()
                    .map_err(|e| format!("--fp-rate: {e}"))?;
                if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                    return Err(format!(
                        "--fp-rate: false-positive rate must be in [0, 1], got {rate}"
                    ));
                }
                params.fp_rate = Some(rate);
            }
            "--fn-rate" => {
                let rate: f64 = value("--fn-rate")?
                    .parse()
                    .map_err(|e| format!("--fn-rate: {e}"))?;
                if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                    return Err(format!(
                        "--fn-rate: false-negative rate must be in [0, 1], got {rate}"
                    ));
                }
                params.fn_rate = Some(rate);
            }
            "--noise" => {
                let sigma: f64 = value("--noise")?
                    .parse()
                    .map_err(|e| format!("--noise: {e}"))?;
                if !(sigma.is_finite() && (0.0..=techniques::MAX_NOISE_SIGMA).contains(&sigma)) {
                    return Err(format!(
                        "--noise: sigma must be in 0..={}, got {sigma}",
                        techniques::MAX_NOISE_SIGMA
                    ));
                }
                params.noise = Some(sigma);
            }
            "--observe" => observe = true,
            "--top-k" => {
                let k: usize = value("--top-k")?
                    .parse()
                    .map_err(|e| format!("--top-k: {e}"))?;
                if k == 0 {
                    return Err(
                        "--top-k: must be at least 1 (0 would retain no timelines)".to_string()
                    );
                }
                top_k = Some(k);
            }
            "--trace-out" => trace_path = Some(value("--trace-out")?),
            "--smoke" => params.smoke = true,
            "--json" => json_path = Some(value("--json")?),
            "--quiet" => quiet = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if !observe {
        if top_k.is_some() {
            return Err("--top-k requires --observe (it sizes the observe retention)".to_string());
        }
        if trace_path.is_some() {
            return Err(
                "--trace-out requires --observe (the trace is built from observe timelines)"
                    .to_string(),
            );
        }
    }
    if params.noise.is_some() && params.techniques.is_some() {
        // The noise dial works by swapping the default grid's PCS cell
        // for `pcs-n<sigma>`; a technique override replaces that grid, so
        // the flag would silently do nothing.
        return Err(
            "--noise cannot combine with --techniques (the override replaces the grid the \
             noise is applied to); select `pcs-n<sigma>` in --techniques instead"
                .to_string(),
        );
    }
    if observe {
        params.observe = Some(top_k.unwrap_or(5));
        if params.shards.is_some() {
            return Err(
                "--observe cannot combine with --shards: the sharded LP engine does not \
                 support the observability layer (run serial by omitting --shards)"
                    .to_string(),
            );
        }
    }
    Ok(RunArgs {
        scenario: scenario.ok_or("missing --scenario")?,
        params,
        seed_override,
        json_path,
        trace_path,
        quiet,
    })
}

fn cmd_run(args: &[String]) -> i32 {
    let mut run = match parse_run_args(args) {
        Ok(run) => run,
        Err(message) => {
            eprintln!("{message}\n\n{}", usage());
            return 2;
        }
    };
    let Some(scenario) = scenarios::find(&run.scenario) else {
        eprintln!(
            "unknown scenario `{}`; `pcs list` shows the registry",
            run.scenario
        );
        return 2;
    };
    if run.params.techniques.is_some() && !scenario.techniques_selectable() {
        let selectable: Vec<&str> = scenarios::registry()
            .iter()
            .filter(|s| s.techniques_selectable())
            .map(|s| s.name())
            .collect();
        eprintln!(
            "scenario `{}` does not sweep techniques; --techniques applies to: {}",
            scenario.name(),
            selectable.join(", ")
        );
        return 2;
    }
    if (run.params.group_cap.is_some() || run.params.sizes.is_some()) && scenario.name() != "scale"
    {
        eprintln!(
            "scenario `{}` has no cluster-size grid; --sizes/--group-cap apply to: scale",
            scenario.name()
        );
        return 2;
    }
    if run.params.shards.is_some() && scenario.name() != "scale" {
        // Elastic configs in particular can never shard: membership
        // churn is outside the LP engine's v1 scope (the engine itself
        // refuses such configs at construction).
        eprintln!(
            "scenario `{}` does not thread the sharded engine; --shards applies to: scale",
            scenario.name()
        );
        return 2;
    }
    if (run.params.target_util.is_some() || run.params.cooldown_secs.is_some())
        && scenario.name() != "elastic"
    {
        eprintln!(
            "scenario `{}` has no autoscaler; --target-util/--cooldown apply to: elastic",
            scenario.name()
        );
        return 2;
    }
    if (run.params.detector_latency_secs.is_some()
        || run.params.fp_rate.is_some()
        || run.params.fn_rate.is_some()
        || run.params.noise.is_some())
        && scenario.name() != "imperfect"
    {
        eprintln!(
            "scenario `{}` has no imperfect-information dials; \
             --detector-latency/--fp-rate/--fn-rate/--noise apply to: imperfect",
            scenario.name()
        );
        return 2;
    }
    if run.params.observe.is_some() && !scenario.observe_supported() {
        let supported: Vec<&str> = scenarios::registry()
            .iter()
            .filter(|s| s.observe_supported())
            .map(|s| s.name())
            .collect();
        eprintln!(
            "scenario `{}` does not support the observability layer (its metrics are \
             wall-clock or it runs no simulation); --observe applies to: {}",
            scenario.name(),
            supported.join(", ")
        );
        return 2;
    }
    run.params.seed = run.seed_override.unwrap_or_else(|| scenario.default_seed());

    eprintln!(
        "running scenario `{}` (seed {}, {} threads{})...",
        scenario.name(),
        run.params.seed,
        run.params.threads,
        if run.params.smoke { ", smoke" } else { "" }
    );
    let plan = scenario.plan(&run.params);
    let cell_count = plan.cells.len();
    let outcome = run_sweep(&plan, &run.params);

    if !run.quiet {
        println!("== {} ==\n", scenario.description());
        print_cells(&outcome);
    }
    print_summary(&outcome);
    for note in &outcome.notes {
        println!("note: {note}");
    }
    eprintln!("{cell_count} cells done");

    if let Some(path) = &run.json_path {
        let report = outcome.to_json(scenario.name(), &run.params).render() + "\n";
        if let Err(error) = std::fs::write(path, report) {
            eprintln!("writing {path}: {error}");
            return 1;
        }
        eprintln!("JSON report written to {path}");
    }
    if let Some(path) = &run.trace_path {
        let report = outcome.to_json(scenario.name(), &run.params);
        let rendered = pcs::trace::chrome_trace(&report).render() + "\n";
        // The trace must round-trip the harness's own strict parser:
        // writing a file Perfetto would reject is worse than failing.
        if let Err(error) = Json::parse(&rendered) {
            eprintln!("internal error: trace does not round-trip: {error}");
            return 1;
        }
        if let Err(error) = std::fs::write(path, rendered) {
            eprintln!("writing {path}: {error}");
            return 1;
        }
        eprintln!("Chrome trace written to {path} (load in Perfetto or chrome://tracing)");
    }
    0
}

fn parse_bench_args(args: &[String]) -> Result<(bench::BenchParams, Option<String>), String> {
    let mut params = bench::BenchParams::default();
    let mut explicit_repeats = None;
    let mut json_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--smoke" => params.smoke = true,
            "--scenarios" => {
                let list = value("--scenarios")?;
                let names: Vec<String> = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if names.is_empty() {
                    return Err("--scenarios: expected at least one scenario name".to_string());
                }
                params.scenarios = Some(names);
            }
            "--repeats" => {
                let repeats: usize = value("--repeats")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
                if repeats == 0 {
                    return Err(
                        "--repeats: must be at least 1 (0 repeats would measure nothing)"
                            .to_string(),
                    );
                }
                explicit_repeats = Some(repeats);
            }
            "--threads" => {
                let threads: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if threads == 0 {
                    return Err(
                        "--threads: must be at least 1 (0 workers would run no cells)".to_string(),
                    );
                }
                params.threads = threads;
            }
            "--label" => params.label = value("--label")?,
            "--baseline" => {
                let path = value("--baseline")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("--baseline: reading {path}: {e}"))?;
                let parsed =
                    Json::parse(&text).map_err(|e| format!("--baseline: parsing {path}: {e}"))?;
                // Fail on an incompatible baseline now, not after minutes
                // of measurement.
                if parsed.get("schema").and_then(Json::as_str) != Some(bench::SCHEMA) {
                    return Err(format!(
                        "--baseline: {path} has an unknown schema (want {})",
                        bench::SCHEMA
                    ));
                }
                params.baseline = Some(parsed);
            }
            "--json" => json_path = Some(value("--json")?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    // An explicit --repeats wins regardless of flag order; otherwise CI
    // smoke mode keeps the suite quick but still averages noise.
    params.repeats = explicit_repeats.unwrap_or(if params.smoke { 2 } else { params.repeats });
    Ok((params, json_path))
}

fn cmd_bench(args: &[String]) -> i32 {
    // `--check <path>` is a standalone validation mode (the CI gate).
    if args.first().map(String::as_str) == Some("--check") {
        let Some(path) = args.get(1) else {
            eprintln!("--check needs a report path");
            return 2;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("reading {path}: {error}");
                return 1;
            }
        };
        return match bench::check_report(&text) {
            Ok(()) => {
                println!("{path}: ok (all scenario families covered)");
                0
            }
            Err(problem) => {
                eprintln!("{path}: {problem}");
                1
            }
        };
    }
    let (params, json_path) = match parse_bench_args(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}\n\n{}", usage());
            return 2;
        }
    };
    let report = match bench::run(&params) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("{error}");
            return 1;
        }
    };
    let rendered = report.render() + "\n";
    match &json_path {
        Some(path) => {
            if let Err(error) = std::fs::write(path, &rendered) {
                eprintln!("writing {path}: {error}");
                return 1;
            }
            eprintln!("bench report written to {path}");
        }
        None => print!("{rendered}"),
    }
    0
}

/// True for values the plain-text table can show in one cell.
fn is_scalar(value: &Json) -> bool {
    !matches!(value, Json::Array(_) | Json::Object(_))
}

fn print_cells(outcome: &SweepOutcome) {
    let Some(first) = outcome.cells.first() else {
        println!("(no cells)");
        return;
    };
    let columns: Vec<&String> = first
        .params
        .iter()
        .chain(first.metrics.iter())
        .filter(|(_, v)| is_scalar(v))
        .map(|(k, _)| k)
        .collect();
    let header: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
    let rows: Vec<Vec<String>> = outcome
        .cells
        .iter()
        .map(|cell| {
            columns
                .iter()
                .map(|column| {
                    cell.value(column)
                        .map(Json::to_cell_string)
                        .unwrap_or_default()
                })
                .collect()
        })
        .collect();
    println!("{}", tables::render(&header, &rows));
}

fn print_summary(outcome: &SweepOutcome) {
    for (key, value) in &outcome.summary {
        match value {
            Json::Array(rows) if rows.iter().all(|r| matches!(r, Json::Object(_))) => {
                let Some(Json::Object(first)) = rows.first() else {
                    continue;
                };
                let header: Vec<String> = first.iter().map(|(k, _)| k.clone()).collect();
                let table_rows: Vec<Vec<String>> = rows
                    .iter()
                    .filter_map(|row| match row {
                        Json::Object(pairs) => Some(
                            header
                                .iter()
                                .map(|column| {
                                    pairs
                                        .iter()
                                        .find(|(k, _)| k == column)
                                        .map(|(_, v)| v.to_cell_string())
                                        .unwrap_or_default()
                                })
                                .collect(),
                        ),
                        _ => None,
                    })
                    .collect();
                println!("{key}:\n{}", tables::render(&header, &table_rows));
            }
            value => println!("{key}: {}", value.to_cell_string()),
        }
    }
}
