//! # pcs — Predictive Component-level Scheduling
//!
//! A production-quality Rust reproduction of
//!
//! > Rui Han, Junwei Wang, Siguang Huang, Chenrong Shao, Shulin Zhan,
//! > Jianfeng Zhan, Jose Luis Vazquez-Poletti.
//! > *PCS: Predictive Component-level Scheduling for Reducing Tail Latency
//! > in Cloud Online Services.* ICPP 2015.
//!
//! Large online services compose responses from hundreds of parallel
//! components, so the **tail** (99th percentile) of component latency —
//! not the mean — determines user-visible performance. When components
//! co-locate with churning batch jobs, contention makes individual
//! components stragglers. PCS predicts every component's latency on every
//! node from monitored contention (a per-resource regression feeding an
//! M/G/1 model) and greedily migrates the stragglers wherever the
//! predicted *overall* latency drops the most.
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`pcs_core`] | the paper's contribution: predictor, performance matrix, greedy scheduler |
//! | [`pcs_sim`] | discrete-event cluster simulator (the evaluation platform) |
//! | [`pcs_baselines`] | compared techniques: RED-3/5, RI-90/99 |
//! | [`pcs_workloads`] | BigDataBench-like batch jobs, arrival processes, topologies |
//! | [`pcs_monitor`] | contention samplers, rate estimation, latency recording |
//! | [`pcs_regression`] | Eq. 1 regression substrate |
//! | [`pcs_queueing`] | Eq. 2 M/G/1 substrate, percentiles, distributions |
//! | [`pcs_types`] | shared primitives |
//!
//! This umbrella crate adds the [`controller::PcsController`] — the glue
//! that feeds the simulator's monitors into the core scheduler —
//! [`techniques`]: the open registry of compared techniques (the paper's
//! Basic/RED/RI/PCS plus reactive, oracle and capacity-aware baselines) —
//! and [`experiments`]: drivers that regenerate every table and figure of
//! the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```no_run
//! use pcs::controller::PcsController;
//! use pcs::experiments::fig6;
//! use pcs::techniques;
//! use pcs_sim::{SimConfig, Simulation};
//! use pcs_workloads::ServiceTopology;
//!
//! // Train the predictor once per component class (profiling campaign) …
//! let topology = ServiceTopology::nutch(24);
//! let models = PcsController::train_for(&topology, Default::default(), 1).unwrap();
//!
//! // … then run the service under any registered technique.
//! let config = SimConfig::paper_like(topology, 200.0, 42);
//! let technique = techniques::parse("pcs").unwrap();
//! let report = fig6::run_cell(&config, technique.as_ref(), &models);
//! println!(
//!     "{} @200 req/s: component p99 {:.2} ms, overall mean {:.2} ms",
//!     report.technique,
//!     report.component_p99_ms(),
//!     report.overall_mean_ms()
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bench;
pub mod controller;
pub mod experiments;
pub mod scenarios;
pub mod tables;
pub mod techniques;
pub mod trace;

pub use controller::PcsController;

// Re-export the workspace so downstream users need a single dependency.
pub use pcs_baselines as baselines;
pub use pcs_core as core;
pub use pcs_monitor as monitor;
pub use pcs_queueing as queueing;
pub use pcs_regression as regression;
pub use pcs_sim as sim;
pub use pcs_types as types;
pub use pcs_workloads as workloads;
