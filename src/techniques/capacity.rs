//! `CAP`: capacity-aware initial placement, no runtime scheduling.
//!
//! The `hetero` scenario's other baselines all provision with
//! capacity-blind anti-affinity, so half-size nodes receive an equal
//! share of the service and contend twice as hard. `CAP` fixes only the
//! *provisioning* step — components spread proportionally to node
//! capacity ([`pcs_sim::placement::capacity_aware`]) and then never move.
//! Comparing CAP against PCS separates what a one-shot capacity-aware
//! deployment buys from what run-time migration buys (the ROADMAP's
//! capacity-aware placement baseline).

use super::{TechniqueEnv, TechniqueSpec};
use pcs_sim::{BasicPolicy, DispatchPolicy, NoopScheduler, PlacementStrategy, SchedulerHook};

/// The `CAP` technique: Basic dispatch on a capacity-proportional layout.
#[derive(Debug, Clone, Copy)]
pub struct CapacityAwareSpec;

impl TechniqueSpec for CapacityAwareSpec {
    fn name(&self) -> String {
        "CAP".into()
    }

    fn description(&self) -> String {
        "capacity-aware initial placement, no runtime scheduling".into()
    }

    fn replication(&self) -> usize {
        1
    }

    fn make_policy(&self) -> Box<dyn DispatchPolicy> {
        Box::new(BasicPolicy)
    }

    fn make_hook(&self, _env: &TechniqueEnv<'_>) -> Box<dyn SchedulerHook> {
        Box::new(NoopScheduler)
    }

    fn placement(&self) -> Option<PlacementStrategy> {
        Some(PlacementStrategy::CapacityAware)
    }
}
