//! `PCS-N<σ>`: the PCS controller with seeded multiplicative noise on
//! its demand estimates.
//!
//! The `oracle` technique bounds PCS from above (perfect inputs); this
//! family sweeps the other direction: every live node's demand estimate
//! is multiplied by a fresh mean-one log-normal factor of parameter σ at
//! every interval ([`PcsController::with_demand_noise`]), measuring how
//! gracefully the same Algorithm 1 degrades as its inputs get worse.
//! σ = 0 builds no noise object at all, so `pcs-n0` is byte-identical to
//! plain `pcs`.

use super::{minimal_percent, TechniqueEnv, TechniqueSpec};
use crate::controller::PcsController;
use pcs_core::{MatrixConfig, SchedulerConfig};
use pcs_sim::{BasicPolicy, DispatchPolicy, SchedulerHook};

/// Largest accepted noise σ. exp(4²/2) ≈ 3000× median-to-mean spread —
/// far beyond any informative operating point; larger values only invite
/// overflow in the log-normal moments.
pub const MAX_NOISE_SIGMA: f64 = 4.0;

/// The `PCS-N<σ>` technique: PCS under prediction-error injection.
#[derive(Debug, Clone, Copy)]
pub struct PcsNoiseSpec {
    /// Noise parameter σ of the underlying normal. Stored as given so
    /// the name round-trips the user's token exactly (like `RiSpec`).
    sigma: f64,
}

impl PcsNoiseSpec {
    /// Creates PCS-N for a noise parameter σ, e.g. `0.3` or `1`.
    ///
    /// # Panics
    /// Panics unless `0 <= sigma <= MAX_NOISE_SIGMA` and finite.
    pub fn new(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && (0.0..=MAX_NOISE_SIGMA).contains(&sigma),
            "PCS-N needs sigma in 0..={MAX_NOISE_SIGMA}, got {sigma}"
        );
        PcsNoiseSpec { sigma }
    }
}

impl TechniqueSpec for PcsNoiseSpec {
    fn name(&self) -> String {
        format!("PCS-N{}", minimal_percent(self.sigma))
    }

    fn description(&self) -> String {
        format!(
            "PCS with mean-one log-normal noise (sigma {}) on its demand estimates",
            minimal_percent(self.sigma)
        )
    }

    fn replication(&self) -> usize {
        1
    }

    fn make_policy(&self) -> Box<dyn DispatchPolicy> {
        Box::new(BasicPolicy)
    }

    fn make_hook(&self, env: &TechniqueEnv<'_>) -> Box<dyn SchedulerHook> {
        Box::new(
            PcsController::new(
                env.models.clone(),
                SchedulerConfig {
                    epsilon_secs: env.epsilon_secs,
                    max_migrations: None,
                    full_rebuild: false,
                },
                MatrixConfig::default(),
            )
            .with_demand_noise(self.sigma),
        )
    }
}
