//! `Oracle`: the PCS controller fed the simulator's exact per-node
//! demand instead of the noisy sampled windows.
//!
//! PCS's gap to perfection has two sources: the monitoring/regression
//! pipeline (sampling noise, staleness, model error) and the scheduling
//! algorithm itself (greedy search, migration latency, the ε threshold).
//! The oracle removes the first source only — same Algorithm 1, same
//! matrix, but node demand comes from
//! [`pcs_sim::SchedulerContext::ground_truth_demand`] — so the remaining
//! gap to PCS is an upper bound on what better prediction could buy.

use super::{TechniqueEnv, TechniqueSpec};
use crate::controller::PcsController;
use pcs_core::{MatrixConfig, SchedulerConfig};
use pcs_sim::{BasicPolicy, DispatchPolicy, SchedulerHook};

/// The `Oracle` technique: PCS with perfect demand monitoring.
#[derive(Debug, Clone, Copy)]
pub struct OracleSpec;

impl TechniqueSpec for OracleSpec {
    fn name(&self) -> String {
        "Oracle".into()
    }

    fn description(&self) -> String {
        "PCS fed the simulator's exact node demand (prediction upper bound)".into()
    }

    fn replication(&self) -> usize {
        1
    }

    fn make_policy(&self) -> Box<dyn DispatchPolicy> {
        Box::new(BasicPolicy)
    }

    fn make_hook(&self, env: &TechniqueEnv<'_>) -> Box<dyn SchedulerHook> {
        Box::new(
            PcsController::new(
                env.models.clone(),
                SchedulerConfig {
                    epsilon_secs: env.epsilon_secs,
                    max_migrations: None,
                    full_rebuild: false,
                },
                MatrixConfig::default(),
            )
            .with_ground_truth(),
        )
    }
}
