//! The open technique registry: every latency-reduction technique the
//! evaluation can compare, behind one pluggable API.
//!
//! The paper's core claim is comparative — PCS against blind
//! redundancy/reissue techniques (§VI-A) — and this module makes the
//! *technique* axis of that comparison open the same way `src/scenarios`
//! made the *scenario* axis open: a technique is a [`TechniqueSpec`]
//! implementation (name, replication, dispatch policy, scheduler hook,
//! optional placement override), and registering it makes it reachable
//! from every sweep scenario via `pcs run --techniques <list>`.
//!
//! | name | technique |
//! |---|---|
//! | `basic` | no redundancy, no reissue, no migrations |
//! | `red-<k>` | request redundancy, k parallel replicas (paper: 3, 5) |
//! | `ri-<p>` | request reissue at the p-th latency percentile (paper: 90, 99) |
//! | `pcs` | predictive component-level scheduling (this paper) |
//! | `pcs+red<k>` | predictive migration under RED-k redundancy (hybrid) |
//! | `pcs-b<n>` | budgeted PCS: ≤ n migrations per interval |
//! | `pcs-h<cap>` | hierarchical rack-aware PCS, ≤ cap components per group (`hier` = cap 64) |
//! | `ll` | least-loaded reactive migration — no prediction |
//! | `oracle` | PCS fed the simulator's exact node demand (upper bound) |
//! | `pcs-n<σ>` | PCS with mean-one log-normal noise (σ) on its demand estimates |
//! | `cap` | capacity-aware initial placement, no runtime scheduling |
//!
//! Names round-trip exactly: [`parse`] accepts any case and
//! [`TechniqueSpec::name`] renders the canonical display form
//! (`parse("ri-99.5")` names itself `RI-99.5` and parses back to an
//! equivalent spec).

mod builtin;
mod capacity;
mod hier;
mod hybrid;
mod noisy;
mod oracle;
mod reactive;

pub use builtin::{minimal_percent, BasicSpec, PcsSpec, RedSpec, RiSpec};
pub use capacity::CapacityAwareSpec;
pub use hier::{HierPcsSpec, DEFAULT_GROUP_CAP, MAX_GROUP_CAP};
pub use hybrid::{BudgetedPcsSpec, HybridRedSpec, MAX_MIGRATION_BUDGET};
pub use noisy::{PcsNoiseSpec, MAX_NOISE_SIGMA};
pub use oracle::OracleSpec;
pub use reactive::{LeastLoadedHook, LeastLoadedSpec};

use pcs_core::ClassModelSet;
use pcs_sim::{DispatchPolicy, PlacementStrategy, SchedulerHook};
use std::fmt;
use std::sync::Arc;

/// A shared, immutable handle to a technique. Sweep configs clone these
/// freely into per-cell closures.
pub type TechniqueRef = Arc<dyn TechniqueSpec>;

/// Everything a technique may consult when building its scheduler hook:
/// the trained per-class latency models and the sweep's migration
/// threshold. Techniques that neither predict nor migrate ignore it.
#[derive(Debug, Clone, Copy)]
pub struct TechniqueEnv<'a> {
    /// Trained Eq. 1 models, one per component class (shared by every
    /// cell of a sweep).
    pub models: &'a ClassModelSet,
    /// The PCS migration threshold ε, in seconds.
    pub epsilon_secs: f64,
}

/// One compared technique: how requests are dispatched, whether and how
/// components migrate, and how the deployment is provisioned.
///
/// Implementations are registered in [`registry`] (and parsed by name via
/// [`parse`]), which makes them selectable on any sweep scenario through
/// `pcs run --techniques <list>`.
pub trait TechniqueSpec: fmt::Debug + Send + Sync {
    /// Canonical display name (`Basic`, `RED-3`, `RI-99.5`, `PCS`, …).
    /// Must round-trip: `parse(name())` yields an equivalent spec.
    fn name(&self) -> String;

    /// One-line description for `pcs list`.
    fn description(&self) -> String;

    /// Physical replica instances this technique needs per partition.
    fn replication(&self) -> usize;

    /// Builds the dispatch policy deciding replica fan-out, reissue and
    /// cancellation.
    fn make_policy(&self) -> Box<dyn DispatchPolicy>;

    /// Builds the scheduler hook run at every scheduling interval.
    fn make_hook(&self, env: &TechniqueEnv<'_>) -> Box<dyn SchedulerHook>;

    /// Initial-placement override; `None` keeps the scenario's default
    /// (capacity-blind anti-affinity).
    fn placement(&self) -> Option<PlacementStrategy> {
        None
    }
}

/// `Basic`: the no-op baseline.
pub fn basic() -> TechniqueRef {
    Arc::new(BasicSpec)
}

/// `RED-k`: request redundancy with `k` parallel replicas.
///
/// # Panics
/// Panics unless `2 <= k <= 8` (the simulator's replica-group cap).
pub fn red(k: usize) -> TechniqueRef {
    Arc::new(RedSpec::new(k))
}

/// `RI-p`: request reissue at latency percentile `p`, in percent
/// (`90.0`, `99.5`, …) — the unit the CLI names use.
///
/// # Panics
/// Panics unless `0 < p < 100`.
pub fn ri(percent: f64) -> TechniqueRef {
    Arc::new(RiSpec::new(percent))
}

/// `PCS`: predictive component-level scheduling (the paper).
pub fn pcs() -> TechniqueRef {
    Arc::new(PcsSpec)
}

/// `PCS+RED<k>`: predictive migration under RED-k redundancy.
///
/// # Panics
/// Panics unless `2 <= k <= 8`.
pub fn pcs_red(k: usize) -> TechniqueRef {
    Arc::new(HybridRedSpec::new(k))
}

/// `PCS-B<n>`: PCS capped at `n` migrations per scheduling interval.
///
/// # Panics
/// Panics unless `1 <= n <= MAX_MIGRATION_BUDGET`.
pub fn pcs_budgeted(n: usize) -> TechniqueRef {
    Arc::new(BudgetedPcsSpec::new(n))
}

/// `PCS-H<cap>`: hierarchical rack-aware PCS with incremental matrix
/// maintenance, at most `cap` components per greedy group.
///
/// # Panics
/// Panics unless `1 <= cap <= MAX_GROUP_CAP`.
pub fn pcs_hier(cap: usize) -> TechniqueRef {
    Arc::new(HierPcsSpec::new(cap))
}

/// `LL`: least-loaded reactive migration — no prediction.
pub fn ll() -> TechniqueRef {
    Arc::new(LeastLoadedSpec)
}

/// `Oracle`: PCS fed the simulator's exact node demand.
pub fn oracle() -> TechniqueRef {
    Arc::new(OracleSpec)
}

/// `PCS-N<σ>`: PCS with seeded mean-one log-normal noise of parameter
/// `sigma` on its demand estimates (`pcs-n0` ≡ `pcs`).
///
/// # Panics
/// Panics unless `0 <= sigma <= MAX_NOISE_SIGMA` and finite.
pub fn pcs_noisy(sigma: f64) -> TechniqueRef {
    Arc::new(PcsNoiseSpec::new(sigma))
}

/// `CAP`: capacity-aware initial placement, no runtime scheduling.
pub fn cap() -> TechniqueRef {
    Arc::new(CapacityAwareSpec)
}

/// Every registered technique, canonical instances in display order
/// (parameterised families are represented by their paper instances; any
/// `red-<k>` / `ri-<p>` parses).
pub fn registry() -> Vec<TechniqueRef> {
    vec![
        basic(),
        red(3),
        red(5),
        ri(90.0),
        ri(99.0),
        pcs(),
        pcs_red(2),
        pcs_budgeted(1),
        pcs_hier(DEFAULT_GROUP_CAP),
        ll(),
        oracle(),
        pcs_noisy(0.5),
        cap(),
    ]
}

/// The paper's six techniques in Figure 6 order.
pub fn paper_set() -> Vec<TechniqueRef> {
    vec![basic(), red(3), red(5), ri(90.0), ri(99.0), pcs()]
}

/// The fig6-shaped `--smoke` shrink: one technique per family.
pub fn smoke_set() -> Vec<TechniqueRef> {
    vec![basic(), red(2), pcs()]
}

/// The extended comparisons' default (diurnal/hetero): one representative
/// per family.
pub fn extended_set() -> Vec<TechniqueRef> {
    vec![basic(), red(3), ri(90.0), pcs()]
}

/// The extended comparisons' `--smoke` shrink: Basic vs PCS.
pub fn extended_smoke_set() -> Vec<TechniqueRef> {
    vec![basic(), pcs()]
}

/// True for the techniques the paper's §VI-C headline averages over: the
/// blind redundancy (`RED-k`) and reissue (`RI-p`) baselines, identified
/// by their canonical display names. The single classification point for
/// the headline reductions — `fig6::headline` and the scenarios' shared
/// reduction summary both call this, so a new registry technique can
/// never drift into the headline mean in one place but not the other.
pub fn is_redundancy_or_reissue(name: &str) -> bool {
    name.starts_with("RED-") || name.starts_with("RI-")
}

/// A failed technique-name parse, with the valid vocabulary attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TechniqueParseError {
    /// The offending token.
    pub token: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for TechniqueParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown technique `{}`: {}; valid techniques: basic, red-<k> (2..=8), \
             ri-<p> (percentile in (0,100), e.g. ri-99.5), pcs, pcs+red<k> (2..=8), \
             pcs-b<n> (1..=64), pcs-h<cap> (1..=1024; `hier` = pcs-h64), \
             pcs-n<sigma> (0..=4, e.g. pcs-n0.5), ll, oracle, cap",
            self.token, self.reason
        )
    }
}

impl std::error::Error for TechniqueParseError {}

fn err(token: &str, reason: impl Into<String>) -> TechniqueParseError {
    TechniqueParseError {
        token: token.to_string(),
        reason: reason.into(),
    }
}

/// Parses one technique name (case-insensitive). Round-trips with
/// [`TechniqueSpec::name`]: `parse(&spec.name())` yields an equivalent
/// spec for every registered technique.
///
/// # Errors
/// Returns a [`TechniqueParseError`] naming the valid vocabulary on an
/// unknown name or an out-of-range family parameter.
pub fn parse(name: &str) -> Result<TechniqueRef, TechniqueParseError> {
    let token = name.trim();
    let lower = token.to_ascii_lowercase();
    match lower.as_str() {
        "basic" => return Ok(basic()),
        "pcs" => return Ok(pcs()),
        "hier" => return Ok(pcs_hier(DEFAULT_GROUP_CAP)),
        "ll" => return Ok(ll()),
        "oracle" => return Ok(oracle()),
        "cap" => return Ok(cap()),
        _ => {}
    }
    if let Some(k) = lower.strip_prefix("pcs+red") {
        let k: usize = k
            .parse()
            .map_err(|_| err(token, "the replica count after `pcs+red` is not an integer"))?;
        if !(2..=8).contains(&k) {
            return Err(err(token, "hybrid replica count must be in 2..=8"));
        }
        return Ok(pcs_red(k));
    }
    if let Some(n) = lower.strip_prefix("pcs-b") {
        let n: usize = n
            .parse()
            .map_err(|_| err(token, "the budget after `pcs-b` is not an integer"))?;
        if !(1..=MAX_MIGRATION_BUDGET).contains(&n) {
            return Err(err(
                token,
                format!("migration budget must be in 1..={MAX_MIGRATION_BUDGET}"),
            ));
        }
        return Ok(pcs_budgeted(n));
    }
    if let Some(cap) = lower.strip_prefix("pcs-h") {
        let cap: usize = cap
            .parse()
            .map_err(|_| err(token, "the group cap after `pcs-h` is not an integer"))?;
        if !(1..=MAX_GROUP_CAP).contains(&cap) {
            return Err(err(
                token,
                format!("group cap must be in 1..={MAX_GROUP_CAP}"),
            ));
        }
        return Ok(pcs_hier(cap));
    }
    if let Some(sigma) = lower.strip_prefix("pcs-n") {
        let sigma: f64 = sigma
            .parse()
            .map_err(|_| err(token, "the sigma after `pcs-n` is not a number"))?;
        if !(sigma.is_finite() && (0.0..=MAX_NOISE_SIGMA).contains(&sigma)) {
            return Err(err(
                token,
                format!("noise sigma must be in 0..={MAX_NOISE_SIGMA}"),
            ));
        }
        return Ok(pcs_noisy(sigma));
    }
    if let Some(k) = lower.strip_prefix("red-") {
        let k: usize = k
            .parse()
            .map_err(|_| err(token, "the replica count after `red-` is not an integer"))?;
        if !(2..=8).contains(&k) {
            return Err(err(token, "replica count must be in 2..=8"));
        }
        return Ok(red(k));
    }
    if let Some(p) = lower.strip_prefix("ri-") {
        let percent: f64 = p
            .parse()
            .map_err(|_| err(token, "the percentile after `ri-` is not a number"))?;
        if !(percent > 0.0 && percent < 100.0) {
            return Err(err(token, "reissue percentile must be in (0, 100)"));
        }
        return Ok(ri(percent));
    }
    Err(err(token, "not a registered technique"))
}

/// Parses a comma-separated technique list (`"red-3,ri-99,pcs"`).
///
/// # Errors
/// Fails on the first invalid token (empty tokens included), with the
/// valid vocabulary in the message.
pub fn parse_list(list: &str) -> Result<Vec<TechniqueRef>, TechniqueParseError> {
    let mut out = Vec::new();
    for token in list.split(',') {
        if token.trim().is_empty() {
            return Err(err(token, "empty technique name"));
        }
        out.push(parse(token)?);
    }
    if out.is_empty() {
        return Err(err(list, "empty technique list"));
    }
    Ok(out)
}

/// Resolves a sweep's technique set: CLI-selected names if present (the
/// CLI validates them with [`parse_list`] before the plan is built),
/// otherwise the scenario's default set.
///
/// # Panics
/// Panics on an unparseable name — reachable only when a caller bypasses
/// the CLI validation with a hand-built
/// [`pcs_harness::SweepParams::techniques`].
pub fn resolve(selected: Option<&[String]>, default_set: Vec<TechniqueRef>) -> Vec<TechniqueRef> {
    match selected {
        None => default_set,
        Some(names) => names
            .iter()
            .map(|name| parse(name).unwrap_or_else(|e| panic!("{e}")))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Equivalence for round-trip checks: same canonical name, same
    /// replication requirement.
    fn equivalent(a: &dyn TechniqueSpec, b: &dyn TechniqueSpec) -> bool {
        a.name() == b.name() && a.replication() == b.replication()
    }

    #[test]
    fn registry_names_round_trip() {
        for spec in registry() {
            let reparsed =
                parse(&spec.name()).unwrap_or_else(|e| panic!("{} must parse: {e}", spec.name()));
            assert!(
                equivalent(spec.as_ref(), reparsed.as_ref()),
                "{} round-trips to {}",
                spec.name(),
                reparsed.name()
            );
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<String> = registry().iter().map(|s| s.name()).collect();
        for name in &names {
            assert_eq!(names.iter().filter(|n| *n == name).count(), 1, "{name}");
        }
    }

    #[test]
    fn parse_accepts_the_issue_examples() {
        let specs = parse_list("red-3,ri-99,pcs").unwrap();
        let names: Vec<String> = specs.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["RED-3", "RI-99", "PCS"]);
        // Round-trip the rendered names straight back.
        let again = parse_list(&names.join(",")).unwrap();
        assert_eq!(again.iter().map(|s| s.name()).collect::<Vec<_>>(), names);
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert_eq!(parse(" PCS ").unwrap().name(), "PCS");
        assert_eq!(parse("Red-5").unwrap().name(), "RED-5");
        assert_eq!(parse("RI-90").unwrap().name(), "RI-90");
        assert_eq!(parse("Oracle").unwrap().name(), "Oracle");
    }

    #[test]
    fn parse_rejects_unknowns_helpfully() {
        let e = parse("warp-drive").unwrap_err();
        let message = e.to_string();
        assert!(message.contains("warp-drive"), "{message}");
        for valid in [
            "basic",
            "red-<k>",
            "ri-<p>",
            "pcs",
            "pcs+red<k>",
            "pcs-b<n>",
            "pcs-h<cap>",
            "pcs-n<sigma>",
            "ll",
            "oracle",
            "cap",
        ] {
            assert!(message.contains(valid), "{message} must list {valid}");
        }
        assert!(parse("red-1").is_err(), "k = 1 is just basic");
        assert!(parse("red-9").is_err(), "beyond the simulator's group cap");
        assert!(parse("ri-0").is_err());
        assert!(parse("ri-100").is_err());
        assert!(parse("pcs+red1").is_err(), "hybrid k = 1 is just pcs");
        assert!(parse("pcs+red9").is_err());
        assert!(parse("pcs-b0").is_err(), "budget 0 would never migrate");
        assert!(parse("pcs-b65").is_err(), "beyond the budget cap");
        assert!(parse("pcs-h0").is_err(), "a zero group cap is degenerate");
        assert!(parse("pcs-h1025").is_err(), "beyond the group-cap limit");
        assert!(parse_list("pcs,,basic").is_err());
        assert!(parse_list("").is_err());
    }

    #[test]
    fn hybrid_and_budgeted_parse_and_round_trip() {
        assert_eq!(parse("pcs+red2").unwrap().name(), "PCS+RED2");
        assert_eq!(parse("PCS+RED3").unwrap().name(), "PCS+RED3");
        assert_eq!(parse("pcs-b1").unwrap().name(), "PCS-B1");
        assert_eq!(parse("Pcs-B16").unwrap().name(), "PCS-B16");
        assert_eq!(parse("pcs+red2").unwrap().replication(), 2);
        assert_eq!(parse("pcs-b4").unwrap().replication(), 1);
        // Neither is a redundancy/reissue baseline: the §VI-C headline
        // mean must not absorb PCS variants.
        assert!(!is_redundancy_or_reissue("PCS+RED2"));
        assert!(!is_redundancy_or_reissue("PCS-B1"));
    }

    #[test]
    fn noisy_parses_and_round_trips() {
        assert_eq!(parse("pcs-n0.5").unwrap().name(), "PCS-N0.5");
        assert_eq!(parse("PCS-N0.5").unwrap().name(), "PCS-N0.5");
        assert_eq!(parse("pcs-n0").unwrap().name(), "PCS-N0");
        assert_eq!(parse("pcs-n1").unwrap().name(), "PCS-N1");
        assert_eq!(parse("pcs-n0.5").unwrap().replication(), 1);
        assert!(parse("pcs-n-0.1").is_err(), "negative sigma");
        assert!(parse("pcs-n4.5").is_err(), "beyond the sigma cap");
        assert!(parse("pcs-nan").is_err(), "`an` is not a number");
        assert!(parse("pcs-ninf").is_err(), "infinite sigma");
        // Not a redundancy/reissue baseline: the §VI-C headline mean
        // must not absorb PCS variants.
        assert!(!is_redundancy_or_reissue("PCS-N0.5"));
    }

    #[test]
    fn hierarchical_parses_and_round_trips() {
        assert_eq!(parse("pcs-h64").unwrap().name(), "PCS-H64");
        assert_eq!(parse("PCS-H640").unwrap().name(), "PCS-H640");
        // The bare alias picks the default cap and renders canonically.
        assert_eq!(parse("hier").unwrap().name(), "PCS-H64");
        assert_eq!(parse("HIER").unwrap().name(), "PCS-H64");
        assert_eq!(parse("pcs-h64").unwrap().replication(), 1);
        assert!(!is_redundancy_or_reissue("PCS-H64"));
    }

    #[test]
    fn sets_match_the_papers_grids() {
        let names = |set: Vec<TechniqueRef>| set.iter().map(|s| s.name()).collect::<Vec<_>>();
        assert_eq!(
            names(paper_set()),
            vec!["Basic", "RED-3", "RED-5", "RI-90", "RI-99", "PCS"]
        );
        assert_eq!(names(smoke_set()), vec!["Basic", "RED-2", "PCS"]);
        assert_eq!(
            names(extended_set()),
            vec!["Basic", "RED-3", "RI-90", "PCS"]
        );
        assert_eq!(names(extended_smoke_set()), vec!["Basic", "PCS"]);
    }

    #[test]
    fn resolve_prefers_selected_names() {
        let resolved = resolve(Some(&["basic".to_string(), "pcs".to_string()]), paper_set());
        assert_eq!(
            resolved.iter().map(|s| s.name()).collect::<Vec<_>>(),
            vec!["Basic", "PCS"]
        );
        assert_eq!(resolve(None, paper_set()).len(), 6);
    }
}
