//! The paper's §VI-A compared techniques as [`TechniqueSpec`]s: Basic,
//! RED-k, RI-p and PCS itself.

use super::{TechniqueEnv, TechniqueSpec};
use crate::controller::PcsController;
use pcs_baselines::{RedundancyPolicy, ReissuePolicy};
use pcs_core::{MatrixConfig, SchedulerConfig};
use pcs_sim::{BasicPolicy, DispatchPolicy, NoopScheduler, SchedulerHook};

/// Renders a reissue percentile (in percent) as its minimal-exact
/// string: `90.0` → `"90"`, `99.5` → `"99.5"`, `99.51` → `"99.51"`.
///
/// Rust's shortest-round-trip `f64` display guarantees distinct
/// percentiles render distinctly — the previous `{:.0}` formatting
/// collapsed 99.5 and 99.51 both to `"100"` and could not round-trip.
/// The percent is the *stored* parameter (not recomputed from a
/// fraction), so a CLI token like `ri-29` renders back as exactly
/// `RI-29`.
pub fn minimal_percent(percent: f64) -> String {
    format!("{percent}")
}

/// `Basic`: one instance per partition, no redundancy, no reissue, no
/// migrations — the paper's do-nothing baseline.
#[derive(Debug, Clone, Copy)]
pub struct BasicSpec;

impl TechniqueSpec for BasicSpec {
    fn name(&self) -> String {
        "Basic".into()
    }

    fn description(&self) -> String {
        "no redundancy, no reissue, no migrations".into()
    }

    fn replication(&self) -> usize {
        1
    }

    fn make_policy(&self) -> Box<dyn DispatchPolicy> {
        Box::new(BasicPolicy)
    }

    fn make_hook(&self, _env: &TechniqueEnv<'_>) -> Box<dyn SchedulerHook> {
        Box::new(NoopScheduler)
    }
}

/// `RED-k`: every partition sub-request fans out to `k` replicas, the
/// quickest response wins, queued duplicates are cancelled.
#[derive(Debug, Clone, Copy)]
pub struct RedSpec {
    k: usize,
}

impl RedSpec {
    /// Creates RED-k.
    ///
    /// # Panics
    /// Panics unless `2 <= k <= 8` (the simulator caps replica groups at
    /// 8 instances).
    pub fn new(k: usize) -> Self {
        assert!((2..=8).contains(&k), "RED-k needs k in 2..=8, got {k}");
        RedSpec { k }
    }
}

impl TechniqueSpec for RedSpec {
    fn name(&self) -> String {
        format!("RED-{}", self.k)
    }

    fn description(&self) -> String {
        format!("request redundancy, {} parallel replicas", self.k)
    }

    fn replication(&self) -> usize {
        self.k
    }

    fn make_policy(&self) -> Box<dyn DispatchPolicy> {
        Box::new(RedundancyPolicy::new(self.k))
    }

    fn make_hook(&self, _env: &TechniqueEnv<'_>) -> Box<dyn SchedulerHook> {
        Box::new(NoopScheduler)
    }
}

/// `RI-p`: a sub-request is reissued to a backup replica once it has been
/// outstanding longer than the class's p-th latency percentile.
#[derive(Debug, Clone, Copy)]
pub struct RiSpec {
    /// Reissue percentile in percent, `(0, 100)` — the unit the CLI and
    /// the display name use. Stored as given so the name round-trips the
    /// user's token exactly (converting through a fraction would turn
    /// `ri-29` into `RI-28.999999999999996`).
    percent: f64,
}

impl RiSpec {
    /// Creates RI-p for a percentile in percent, e.g. `90.0` or `99.5`.
    ///
    /// # Panics
    /// Panics unless `0 < percent < 100`.
    pub fn new(percent: f64) -> Self {
        assert!(
            percent > 0.0 && percent < 100.0,
            "reissue percentile must be in (0,100) percent, got {percent}"
        );
        RiSpec { percent }
    }
}

impl TechniqueSpec for RiSpec {
    fn name(&self) -> String {
        format!("RI-{}", minimal_percent(self.percent))
    }

    fn description(&self) -> String {
        format!(
            "request reissue at the {}% latency percentile",
            minimal_percent(self.percent)
        )
    }

    fn replication(&self) -> usize {
        2
    }

    fn make_policy(&self) -> Box<dyn DispatchPolicy> {
        Box::new(ReissuePolicy::new(self.percent / 100.0))
    }

    fn make_hook(&self, _env: &TechniqueEnv<'_>) -> Box<dyn SchedulerHook> {
        Box::new(NoopScheduler)
    }
}

/// `PCS`: predictive component-level scheduling — the paper's framework,
/// dispatching like Basic and migrating stragglers every interval.
#[derive(Debug, Clone, Copy)]
pub struct PcsSpec;

impl TechniqueSpec for PcsSpec {
    fn name(&self) -> String {
        "PCS".into()
    }

    fn description(&self) -> String {
        "predictive component-level scheduling (this paper)".into()
    }

    fn replication(&self) -> usize {
        1
    }

    fn make_policy(&self) -> Box<dyn DispatchPolicy> {
        Box::new(BasicPolicy)
    }

    fn make_hook(&self, env: &TechniqueEnv<'_>) -> Box<dyn SchedulerHook> {
        Box::new(PcsController::new(
            env.models.clone(),
            SchedulerConfig {
                epsilon_secs: env.epsilon_secs,
                max_migrations: None,
                full_rebuild: false,
            },
            MatrixConfig::default(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names_are_unchanged() {
        assert_eq!(BasicSpec.name(), "Basic");
        assert_eq!(RedSpec::new(3).name(), "RED-3");
        assert_eq!(RedSpec::new(5).name(), "RED-5");
        assert_eq!(RiSpec::new(90.0).name(), "RI-90");
        assert_eq!(RiSpec::new(99.0).name(), "RI-99");
        assert_eq!(PcsSpec.name(), "PCS");
    }

    #[test]
    fn ri_rendering_is_minimal_exact() {
        // The regression the old `{:.0}` formatting could not survive:
        // 99.5 and 99.51 rendered identically ("RI-100") and neither
        // could round-trip through a parser.
        assert_eq!(RiSpec::new(99.5).name(), "RI-99.5");
        assert_eq!(RiSpec::new(99.51).name(), "RI-99.51");
        assert_ne!(RiSpec::new(99.5).name(), RiSpec::new(99.51).name());
        assert_eq!(minimal_percent(50.0), "50");
        // Integral CLI percents stay integral: the percent is stored,
        // never reconstructed from a fraction.
        assert_eq!(RiSpec::new(29.0).name(), "RI-29");
        assert_eq!(RiSpec::new(7.0).name(), "RI-7");
    }

    #[test]
    fn replication_matches_policies() {
        for spec in [
            &RedSpec::new(2) as &dyn TechniqueSpec,
            &RedSpec::new(5),
            &RiSpec::new(99.0),
            &BasicSpec,
            &PcsSpec,
        ] {
            assert_eq!(
                spec.replication(),
                spec.make_policy().replication(),
                "{} spec and policy must agree",
                spec.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "2..=8")]
    fn red_rejects_k1() {
        let _ = RedSpec::new(1);
    }
}
