//! PCS variants from the ROADMAP: the redundancy hybrid and the
//! migration-budgeted frontier point.
//!
//! Both are pure registry specs — combinations of the existing policy and
//! hook factories, needing nothing new in the simulator:
//!
//! * `pcs+red<k>` dispatches like RED-k (k parallel replicas, quickest
//!   wins, queued duplicates cancelled) *and* runs the predictive
//!   controller. Redundancy absorbs the stragglers that strike between
//!   scheduling intervals; migration removes the structural ones.
//! * `pcs-b<n>` is plain PCS with [`SchedulerConfig::max_migrations`]
//!   capped at `n` per interval, charting the gain/churn frontier (how
//!   much of the latency win survives when migrations are rationed).

use super::{TechniqueEnv, TechniqueSpec};
use crate::controller::PcsController;
use pcs_baselines::RedundancyPolicy;
use pcs_core::{MatrixConfig, SchedulerConfig};
use pcs_sim::{BasicPolicy, DispatchPolicy, SchedulerHook};

/// `PCS+RED<k>`: predictive migration under RED-k request redundancy.
#[derive(Debug, Clone, Copy)]
pub struct HybridRedSpec {
    k: usize,
}

impl HybridRedSpec {
    /// Creates the hybrid for `k` parallel replicas.
    ///
    /// # Panics
    /// Panics unless `2 <= k <= 8` (the simulator's replica-group cap).
    pub fn new(k: usize) -> Self {
        assert!((2..=8).contains(&k), "PCS+RED<k> needs k in 2..=8, got {k}");
        HybridRedSpec { k }
    }
}

impl TechniqueSpec for HybridRedSpec {
    fn name(&self) -> String {
        format!("PCS+RED{}", self.k)
    }

    fn description(&self) -> String {
        format!(
            "predictive migration under RED-{} request redundancy (hybrid)",
            self.k
        )
    }

    fn replication(&self) -> usize {
        self.k
    }

    fn make_policy(&self) -> Box<dyn DispatchPolicy> {
        Box::new(RedundancyPolicy::new(self.k))
    }

    fn make_hook(&self, env: &TechniqueEnv<'_>) -> Box<dyn SchedulerHook> {
        Box::new(PcsController::new(
            env.models.clone(),
            SchedulerConfig {
                epsilon_secs: env.epsilon_secs,
                max_migrations: None,
                full_rebuild: false,
            },
            MatrixConfig::default(),
        ))
    }
}

/// The budget cap's upper bound: beyond the simulator's largest
/// deployments a bigger budget is indistinguishable from `None`.
pub const MAX_MIGRATION_BUDGET: usize = 64;

/// `PCS-B<n>`: PCS rationed to at most `n` migrations per interval.
#[derive(Debug, Clone, Copy)]
pub struct BudgetedPcsSpec {
    budget: usize,
}

impl BudgetedPcsSpec {
    /// Creates the budgeted variant allowing `budget` migrations per
    /// scheduling interval.
    ///
    /// # Panics
    /// Panics unless `1 <= budget <= MAX_MIGRATION_BUDGET`.
    pub fn new(budget: usize) -> Self {
        assert!(
            (1..=MAX_MIGRATION_BUDGET).contains(&budget),
            "PCS-B<n> needs a budget in 1..={MAX_MIGRATION_BUDGET}, got {budget}"
        );
        BudgetedPcsSpec { budget }
    }
}

impl TechniqueSpec for BudgetedPcsSpec {
    fn name(&self) -> String {
        format!("PCS-B{}", self.budget)
    }

    fn description(&self) -> String {
        format!(
            "budgeted PCS: at most {} migration{} per interval (gain/churn frontier)",
            self.budget,
            if self.budget == 1 { "" } else { "s" }
        )
    }

    fn replication(&self) -> usize {
        1
    }

    fn make_policy(&self) -> Box<dyn DispatchPolicy> {
        Box::new(BasicPolicy)
    }

    fn make_hook(&self, env: &TechniqueEnv<'_>) -> Box<dyn SchedulerHook> {
        Box::new(PcsController::new(
            env.models.clone(),
            SchedulerConfig {
                epsilon_secs: env.epsilon_secs,
                max_migrations: Some(self.budget),
                full_rebuild: false,
            },
            MatrixConfig::default(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_the_cli_tokens() {
        assert_eq!(HybridRedSpec::new(2).name(), "PCS+RED2");
        assert_eq!(HybridRedSpec::new(5).name(), "PCS+RED5");
        assert_eq!(BudgetedPcsSpec::new(1).name(), "PCS-B1");
        assert_eq!(BudgetedPcsSpec::new(16).name(), "PCS-B16");
    }

    #[test]
    fn replication_matches_the_dispatch_policy() {
        for k in [2, 3, 8] {
            let spec = HybridRedSpec::new(k);
            assert_eq!(spec.replication(), spec.make_policy().replication());
        }
        let budgeted = BudgetedPcsSpec::new(4);
        assert_eq!(budgeted.replication(), budgeted.make_policy().replication());
    }

    #[test]
    #[should_panic(expected = "2..=8")]
    fn hybrid_rejects_k1() {
        let _ = HybridRedSpec::new(1);
    }

    #[test]
    #[should_panic(expected = "1..=")]
    fn budget_zero_is_rejected() {
        let _ = BudgetedPcsSpec::new(0);
    }
}
