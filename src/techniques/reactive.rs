//! `LL`: least-loaded reactive migration, in the spirit of load-aware
//! dispatchers like RackSched — migrate off whatever node is hottest
//! *right now*, with no prediction at all.
//!
//! The point of this baseline is to isolate the value of PCS's
//! *predictive* step: LL sees the same monitored contention windows the
//! PCS controller sees, but instead of predicting per-component latency
//! on every candidate node it simply moves the busiest component off the
//! currently hottest node onto the currently coolest one. Any latency gap
//! between LL and PCS is attributable to prediction, not to the mere
//! ability to migrate.

use super::{TechniqueEnv, TechniqueSpec};
use pcs_sim::{BasicPolicy, DispatchPolicy, MigrationRequest, SchedulerContext, SchedulerHook};
use pcs_types::NodeId;

#[cfg(test)]
use pcs_sim::NodeStatus;

/// Minimum hottest-minus-coolest load gap (in summed utilisation
/// fractions) before LL bothers migrating; below it the cluster is
/// considered balanced and a move would be churn.
const LOAD_MARGIN: f64 = 0.1;

/// The reactive hook: one migration per interval, hottest node to coolest
/// node, chosen purely from the monitors' latest contention windows.
#[derive(Debug, Default)]
pub struct LeastLoadedHook {
    /// Last known load per node, carried across empty sampling windows
    /// (mirrors the PCS controller's staleness handling).
    last_load: Vec<f64>,
}

/// A node's scalar load: the mean over the window of the summed
/// CPU/disk/network utilisation fractions (MPKI is excluded — it is on a
/// different scale and the reactive baseline deliberately stays crude).
fn window_load(window: &[pcs_types::ContentionVector]) -> f64 {
    window
        .iter()
        .map(|s| s.core_usage + s.disk_util + s.net_util)
        .sum::<f64>()
        / window.len() as f64
}

impl SchedulerHook for LeastLoadedHook {
    fn on_interval(&mut self, ctx: &SchedulerContext<'_>) -> Vec<MigrationRequest> {
        let k = ctx.node_capacities.len();
        if k < 2 {
            return Vec::new();
        }
        if self.last_load.len() != k {
            self.last_load = vec![0.0; k];
        }
        for (j, window) in ctx.sampled_windows.iter().enumerate() {
            if !window.is_empty() {
                self.last_load[j] = window_load(window);
            }
        }

        // Liveness first: a component stranded on a dead node outranks
        // any load-balancing move. True to LL's reactive one-step nature
        // it evacuates a single component per interval (the lowest id),
        // onto the coolest *live* node — so a dead node drains one
        // scheduling interval at a time, which is exactly the gap the
        // predictive controller's batched evacuation closes.
        if ctx.node_status.iter().any(|s| !s.is_up()) {
            let stranded = ctx
                .components
                .iter()
                .find(|m| !ctx.node_status[m.node.index()].is_up() && !m.migrating);
            if let Some(meta) = stranded {
                // Only destinations the world will accept: live and not
                // hosting one of the orphan's replica-group peers.
                let mut dest: Option<usize> = None;
                for j in 0..k {
                    if !ctx.legal_destination(meta.id, j) {
                        continue;
                    }
                    if dest.is_none_or(|d| self.last_load[j] < self.last_load[d]) {
                        dest = Some(j);
                    }
                }
                return match dest {
                    Some(j) => vec![MigrationRequest {
                        component: meta.id,
                        to: NodeId::from_index(j),
                    }],
                    None => Vec::new(), // nowhere live to go
                };
            }
        }

        // Nothing monitored yet: wait, like the PCS controller does.
        if ctx.sampled_windows.iter().all(|w| w.is_empty()) {
            return Vec::new();
        }
        // The source is the hottest live node that actually hosts a
        // movable component (batch-only nodes have nothing to evacuate);
        // the destination is the coolest live node overall. Ties break
        // towards the lower node index: deterministic.
        let mut evacuable = vec![false; k];
        for meta in ctx.components {
            if !meta.migrating {
                evacuable[meta.node.index()] = true;
            }
        }
        let mut hottest: Option<usize> = None;
        let mut coolest: Option<usize> = None;
        for (j, &can_evacuate) in evacuable.iter().enumerate() {
            if !ctx.node_status[j].is_up() {
                continue;
            }
            if can_evacuate && hottest.is_none_or(|h| self.last_load[j] > self.last_load[h]) {
                hottest = Some(j);
            }
            if coolest.is_none_or(|c| self.last_load[j] < self.last_load[c]) {
                coolest = Some(j);
            }
        }
        let (Some(hottest), Some(coolest)) = (hottest, coolest) else {
            return Vec::new();
        };
        if self.last_load[hottest] - self.last_load[coolest] < LOAD_MARGIN {
            return Vec::new();
        }
        // Evacuate the busiest component of the hottest node (largest
        // normalised own demand; ties towards the lower component id).
        let cap = ctx.node_capacities[hottest];
        let mut best: Option<(f64, pcs_types::ComponentId)> = None;
        for meta in ctx.components {
            if meta.node.index() != hottest || meta.migrating {
                continue;
            }
            let u = cap.normalize(&meta.own_demand);
            let score = u.core_usage + u.disk_util + u.net_util;
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, meta.id));
            }
        }
        match best {
            Some((_, component)) => vec![MigrationRequest {
                component,
                to: NodeId::from_index(coolest),
            }],
            None => Vec::new(),
        }
    }
}

/// The `LL` technique: Basic dispatch plus the reactive hook.
#[derive(Debug, Clone, Copy)]
pub struct LeastLoadedSpec;

impl TechniqueSpec for LeastLoadedSpec {
    fn name(&self) -> String {
        "LL".into()
    }

    fn description(&self) -> String {
        "least-loaded reactive migration off the hottest node (no prediction)".into()
    }

    fn replication(&self) -> usize {
        1
    }

    fn make_policy(&self) -> Box<dyn DispatchPolicy> {
        Box::new(BasicPolicy)
    }

    fn make_hook(&self, _env: &TechniqueEnv<'_>) -> Box<dyn SchedulerHook> {
        Box::new(LeastLoadedHook::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_sim::policy::ComponentMeta;
    use pcs_types::{ComponentId, ContentionVector, NodeCapacity, ResourceVector, SimTime};

    fn meta(id: u32, node: usize, cores: f64) -> ComponentMeta {
        ComponentMeta {
            id: ComponentId::new(id),
            class: 0,
            stage: 0,
            node: NodeId::from_index(node),
            migrating: false,
            own_demand: ResourceVector::new(cores, 0.0, 0.0, 0.0),
        }
    }

    const ALL_UP: [NodeStatus; 8] = [NodeStatus::Up; 8];

    fn ctx_with<'a>(
        components: &'a [ComponentMeta],
        caps: &'a [NodeCapacity],
        windows: &'a [Vec<ContentionVector>],
        demand: &'a [ResourceVector],
    ) -> SchedulerContext<'a> {
        ctx_with_status(components, caps, windows, demand, &ALL_UP[..caps.len()])
    }

    fn ctx_with_status<'a>(
        components: &'a [ComponentMeta],
        caps: &'a [NodeCapacity],
        windows: &'a [Vec<ContentionVector>],
        demand: &'a [ResourceVector],
        status: &'a [NodeStatus],
    ) -> SchedulerContext<'a> {
        SchedulerContext {
            now: SimTime::ZERO,
            components,
            node_capacities: caps,
            sampled_windows: windows,
            arrival_rates: &[],
            service_scv: &[],
            stage_count: 1,
            ground_truth_demand: demand,
            node_status: status,
            replica_peers: &[],
            demand_versions: &[],
            rack_of: &[],
        }
    }

    #[test]
    fn migrates_busiest_component_from_hot_to_cool() {
        let caps = [NodeCapacity::XEON_E5645; 3];
        let comps = [meta(0, 0, 1.0), meta(1, 0, 4.0), meta(2, 1, 1.0)];
        let hot = vec![ContentionVector::new(0.9, 0.0, 0.4, 0.2)];
        let warm = vec![ContentionVector::new(0.4, 0.0, 0.1, 0.1)];
        let cool = vec![ContentionVector::new(0.05, 0.0, 0.0, 0.0)];
        let windows = [hot, warm, cool];
        let demand = [ResourceVector::ZERO; 3];
        let mut hook = LeastLoadedHook::default();
        let orders = hook.on_interval(&ctx_with(&comps, &caps, &windows, &demand));
        assert_eq!(
            orders,
            vec![MigrationRequest {
                component: ComponentId::new(1),
                to: NodeId::from_index(2),
            }],
            "the heaviest component on the hottest node goes to the coolest node"
        );
    }

    #[test]
    fn batch_only_hot_node_is_skipped_for_the_hottest_hosting_node() {
        // Node 0 is the hottest but hosts nothing (pure batch churn);
        // node 1 is the hottest node that can actually be evacuated.
        let caps = [NodeCapacity::XEON_E5645; 3];
        let comps = [meta(0, 1, 2.0), meta(1, 2, 1.0)];
        let windows = [
            vec![ContentionVector::new(1.5, 0.0, 0.8, 0.5)],
            vec![ContentionVector::new(0.7, 0.0, 0.2, 0.1)],
            vec![ContentionVector::new(0.1, 0.0, 0.0, 0.0)],
        ];
        let demand = [ResourceVector::ZERO; 3];
        let mut hook = LeastLoadedHook::default();
        let orders = hook.on_interval(&ctx_with(&comps, &caps, &windows, &demand));
        assert_eq!(
            orders,
            vec![MigrationRequest {
                component: ComponentId::new(0),
                to: NodeId::from_index(2),
            }]
        );
    }

    #[test]
    fn balanced_cluster_and_cold_monitors_stay_put() {
        let caps = [NodeCapacity::XEON_E5645; 2];
        let comps = [meta(0, 0, 1.0), meta(1, 1, 1.0)];
        let demand = [ResourceVector::ZERO; 2];
        let mut hook = LeastLoadedHook::default();

        // All windows empty: cold start, no orders.
        let empty: [Vec<ContentionVector>; 2] = [vec![], vec![]];
        assert!(hook
            .on_interval(&ctx_with(&comps, &caps, &empty, &demand))
            .is_empty());

        // Loads within the margin: balanced, no orders.
        let even = [
            vec![ContentionVector::new(0.5, 0.0, 0.1, 0.1)],
            vec![ContentionVector::new(0.45, 0.0, 0.12, 0.1)],
        ];
        assert!(hook
            .on_interval(&ctx_with(&comps, &caps, &even, &demand))
            .is_empty());
    }

    #[test]
    fn stranded_components_evacuate_one_per_interval_to_live_nodes() {
        let caps = [NodeCapacity::XEON_E5645; 3];
        // Components 0 and 1 stranded on dead node 1; node 2 is cool but
        // DEAD too, so the only legal destination is node 0.
        let comps = [meta(0, 1, 1.0), meta(1, 1, 2.0), meta(2, 0, 1.0)];
        let windows = [
            vec![ContentionVector::new(0.8, 0.0, 0.3, 0.2)],
            vec![],
            vec![ContentionVector::new(0.0, 0.0, 0.0, 0.0)],
        ];
        let status = [NodeStatus::Up, NodeStatus::Down, NodeStatus::Down];
        let demand = [ResourceVector::ZERO; 3];
        let mut hook = LeastLoadedHook::default();
        let orders = hook.on_interval(&ctx_with_status(&comps, &caps, &windows, &demand, &status));
        assert_eq!(
            orders,
            vec![MigrationRequest {
                component: ComponentId::new(0),
                to: NodeId::from_index(0),
            }],
            "one stranded component per interval, lowest id first, live destination only"
        );
    }

    #[test]
    fn evacuation_skips_nodes_hosting_a_replica_peer() {
        // Component 0 is stranded on dead node 2; its replica peer
        // (component 1) sits on node 0, the coolest node. The evacuation
        // must go to node 1 instead — the world would reject a move that
        // co-locates the pair.
        let caps = [NodeCapacity::XEON_E5645; 3];
        let comps = [meta(0, 2, 1.0), meta(1, 0, 1.0)];
        let windows = [
            vec![ContentionVector::new(0.1, 0.0, 0.0, 0.0)],
            vec![ContentionVector::new(0.6, 0.0, 0.2, 0.1)],
            vec![],
        ];
        let status = [NodeStatus::Up, NodeStatus::Up, NodeStatus::Down];
        let demand = [ResourceVector::ZERO; 3];
        let peers: Vec<Vec<ComponentId>> =
            vec![vec![ComponentId::new(1)], vec![ComponentId::new(0)]];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            components: &comps,
            node_capacities: &caps,
            sampled_windows: &windows,
            arrival_rates: &[],
            service_scv: &[],
            stage_count: 1,
            ground_truth_demand: &demand,
            node_status: &status,
            replica_peers: &peers,
            demand_versions: &[],
            rack_of: &[],
        };
        let mut hook = LeastLoadedHook::default();
        assert_eq!(
            hook.on_interval(&ctx),
            vec![MigrationRequest {
                component: ComponentId::new(0),
                to: NodeId::from_index(1),
            }],
            "the cool node hosting the peer is skipped"
        );
    }

    #[test]
    fn no_live_destination_means_no_orders() {
        let caps = [NodeCapacity::XEON_E5645; 2];
        let comps = [meta(0, 0, 1.0)];
        let windows = [vec![], vec![]];
        let status = [NodeStatus::Down, NodeStatus::Down];
        let demand = [ResourceVector::ZERO; 2];
        let mut hook = LeastLoadedHook::default();
        assert!(hook
            .on_interval(&ctx_with_status(&comps, &caps, &windows, &demand, &status))
            .is_empty());
    }

    #[test]
    fn load_balancing_ignores_dead_nodes_entirely() {
        // Node 2 is dead and reads as stone cold; the balancing path must
        // not pick it as the coolest destination. No component is
        // stranded (all live on nodes 0/1), so this exercises the normal
        // path with a dead node present.
        let caps = [NodeCapacity::XEON_E5645; 3];
        let comps = [meta(0, 0, 2.0), meta(1, 1, 1.0)];
        let windows = [
            vec![ContentionVector::new(0.9, 0.0, 0.4, 0.2)],
            vec![ContentionVector::new(0.1, 0.0, 0.0, 0.0)],
            vec![],
        ];
        let status = [NodeStatus::Up, NodeStatus::Up, NodeStatus::Down];
        let demand = [ResourceVector::ZERO; 3];
        let mut hook = LeastLoadedHook::default();
        let orders = hook.on_interval(&ctx_with_status(&comps, &caps, &windows, &demand, &status));
        assert_eq!(
            orders,
            vec![MigrationRequest {
                component: ComponentId::new(0),
                to: NodeId::from_index(1),
            }],
            "the coolest *live* node wins even when a dead node reads colder"
        );
    }

    #[test]
    fn empty_window_reuses_last_load() {
        let caps = [NodeCapacity::XEON_E5645; 2];
        let comps = [meta(0, 0, 2.0), meta(1, 1, 1.0)];
        let demand = [ResourceVector::ZERO; 2];
        let mut hook = LeastLoadedHook::default();
        let first = [
            vec![ContentionVector::new(0.9, 0.0, 0.3, 0.2)],
            vec![ContentionVector::new(0.1, 0.0, 0.0, 0.0)],
        ];
        assert_eq!(
            hook.on_interval(&ctx_with(&comps, &caps, &first, &demand))
                .len(),
            1
        );
        // Node 0's window dries up; its stale load still marks it hottest.
        let second = [vec![], vec![ContentionVector::new(0.1, 0.0, 0.0, 0.0)]];
        assert_eq!(
            hook.on_interval(&ctx_with(&comps, &caps, &second, &demand))
                .len(),
            1
        );
    }
}
