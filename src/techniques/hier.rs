//! `PCS-H<cap>`: the two-level hierarchical PCS variant (paper §VI-D).
//!
//! Dispatches like Basic and migrates like PCS, but the controller runs
//! in hierarchical mode: components are grouped by the rack of their
//! current host and scheduled rack by rack with the bounded greedy
//! (level 1 walks racks, level 2 optimises within a rack's group, capped
//! at `cap` components per greedy run), and the performance matrix is
//! maintained incrementally across intervals instead of rebuilt. Initial
//! placement is rack-aware (rack-striped anti-affinity) so replica
//! groups start on distinct racks.

use super::{TechniqueEnv, TechniqueSpec};
use crate::controller::PcsController;
use pcs_core::{MatrixConfig, SchedulerConfig};
use pcs_sim::{BasicPolicy, DispatchPolicy, PlacementStrategy, SchedulerHook};

/// Largest accepted per-group cap. The paper suggests groups of "640
/// components or less"; 1024 leaves headroom for ablations above that
/// point while still bounding a single greedy run.
pub const MAX_GROUP_CAP: usize = 1024;

/// The group cap the bare `hier` alias selects.
pub const DEFAULT_GROUP_CAP: usize = 64;

/// `PCS-H<cap>`: hierarchical rack-aware PCS with incremental matrix
/// maintenance.
#[derive(Debug, Clone, Copy)]
pub struct HierPcsSpec {
    cap: usize,
}

impl HierPcsSpec {
    /// Creates PCS-H with the given per-group component cap.
    ///
    /// # Panics
    /// Panics unless `1 <= cap <= MAX_GROUP_CAP`.
    pub fn new(cap: usize) -> Self {
        assert!(
            (1..=MAX_GROUP_CAP).contains(&cap),
            "PCS-H group cap must be in 1..={MAX_GROUP_CAP}, got {cap}"
        );
        HierPcsSpec { cap }
    }
}

impl TechniqueSpec for HierPcsSpec {
    fn name(&self) -> String {
        format!("PCS-H{}", self.cap)
    }

    fn description(&self) -> String {
        format!(
            "hierarchical rack-aware PCS, groups of <= {} components, incremental matrix refresh",
            self.cap
        )
    }

    fn replication(&self) -> usize {
        1
    }

    fn make_policy(&self) -> Box<dyn DispatchPolicy> {
        Box::new(BasicPolicy)
    }

    fn make_hook(&self, env: &TechniqueEnv<'_>) -> Box<dyn SchedulerHook> {
        Box::new(
            PcsController::new(
                env.models.clone(),
                SchedulerConfig {
                    epsilon_secs: env.epsilon_secs,
                    max_migrations: None,
                    full_rebuild: false,
                },
                MatrixConfig::default(),
            )
            .with_hierarchical(self.cap),
        )
    }

    fn placement(&self) -> Option<PlacementStrategy> {
        Some(PlacementStrategy::RackAware)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_render_the_cap() {
        assert_eq!(HierPcsSpec::new(64).name(), "PCS-H64");
        assert_eq!(HierPcsSpec::new(640).name(), "PCS-H640");
    }

    #[test]
    fn replication_matches_policy() {
        let spec = HierPcsSpec::new(64);
        assert_eq!(spec.replication(), spec.make_policy().replication());
        assert_eq!(spec.placement(), Some(PlacementStrategy::RackAware));
    }

    #[test]
    #[should_panic(expected = "1..=1024")]
    fn zero_cap_is_rejected() {
        let _ = HierPcsSpec::new(0);
    }

    #[test]
    #[should_panic(expected = "1..=1024")]
    fn oversized_cap_is_rejected() {
        let _ = HierPcsSpec::new(1025);
    }
}
