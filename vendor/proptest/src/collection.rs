//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// The admissible lengths of a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy generating `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..=self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
