//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest the PCS test suites use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`)
//! * [`Strategy`] with `prop_map` / `prop_flat_map`
//! * range, tuple, [`Just`], and [`collection::vec`] strategies
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`]
//!
//! Differences from the real crate: generation is purely random (no
//! bias toward boundary values) and failing cases are **not shrunk** —
//! the panic message instead reports the per-case seed so a failure can
//! be replayed exactly. Cases are deterministic per test name, so CI
//! runs are reproducible; set `PROPTEST_CASES` to override the case
//! count globally.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRunner};

/// The glob-import surface test files expect.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a
/// `#[test]` that draws `cases` inputs from the strategies and runs the
/// body; `prop_assert!`-family failures (or an early `return Ok(())`)
/// short-circuit the case. An optional leading
/// `#![proptest_config(expr)]` sets the [`ProptestConfig`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(config = $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(config = $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::TestRunner::new(config);
            runner.run(stringify!($name), |__pcs_proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __pcs_proptest_rng);)+
                let __pcs_proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                __pcs_proptest_result
            });
        }
    )*};
}

/// Like `assert!`, but fails only the current proptest case (with the
/// replay seed in the message) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Like `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}
