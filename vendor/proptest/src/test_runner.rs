//! The case loop: deterministic per-test seeding, rejection accounting,
//! and failure reporting with a replayable seed.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runner configuration. Construct with [`ProptestConfig::with_cases`] or
/// [`Default`]; the `PROPTEST_CASES` environment variable overrides both.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` precondition did not hold: the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case carrying the unmet precondition.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Executes the configured number of cases for one property.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

/// Base seed mixed with the test name so every property explores a
/// different but reproducible sequence. Override per-run replay by
/// setting `PROPTEST_SEED`.
const BASE_SEED: u64 = 0x9C50_5350_2015_1CC9; // "PCS" / ICPP 2015

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRunner {
    /// Creates a runner, applying the `PROPTEST_CASES` override if set.
    pub fn new(mut config: ProptestConfig) -> Self {
        if let Some(cases) = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            config.cases = cases;
        }
        TestRunner { config }
    }

    /// Runs `f` until `cases` cases pass, panicking on the first failure.
    ///
    /// Rejected cases (`prop_assume!`) do not count toward the target but
    /// are capped at `10 × cases` to keep a vacuous property from looping
    /// forever.
    pub fn run<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
    {
        let seed_override = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        let base = seed_override.unwrap_or(BASE_SEED) ^ fnv1a(name);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let mut case = 0u64;
        while passed < self.config.cases {
            let seed = base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = SmallRng::seed_from_u64(seed);
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    assert!(
                        rejected <= 10 * self.config.cases as u64,
                        "proptest `{name}`: too many rejected cases (last: {why})"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest `{name}` failed at case {case} \
                         (replay with PROPTEST_SEED={}): {message}",
                        seed_override.unwrap_or(BASE_SEED)
                    );
                }
            }
            case += 1;
        }
    }
}
