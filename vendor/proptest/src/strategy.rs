//! Value-generation strategies: ranges, tuples, [`Just`], and the
//! `prop_map` / `prop_flat_map` combinators.

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking:
/// `generate` draws one concrete value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_inclusive_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
