//! Offline stand-in for the `rand` crate (0.8-era API).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors exactly the surface the PCS crates use:
//!
//! * [`Rng`] with `gen`, `gen_range`, and `gen_bool`
//! * [`SeedableRng::seed_from_u64`]
//! * [`rngs::SmallRng`] — a xoshiro256++ generator
//!
//! The generator is fully deterministic per seed, which the simulator
//! relies on for reproducible runs. When a registry becomes available this
//! crate can be deleted and replaced by the real `rand = "0.8"` without
//! touching any caller.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod rngs;

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly from raw bits (the `Standard` distribution of
/// the real crate, folded into a single trait for brevity).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range. Panics if it is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of type `T` from the standard distribution
    /// (floats: uniform `[0, 1)`; integers: uniform over the full width).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&y));
        }
    }
}
