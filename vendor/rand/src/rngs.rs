//! Concrete generators. Only [`SmallRng`] is provided: a xoshiro256++
//! generator, matching the real crate's choice of a small, fast,
//! non-cryptographic PRNG.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — 256 bits of state, period 2^256 − 1, excellent
/// statistical quality for simulation workloads. Not cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors and
        // used by rand's own `seed_from_u64`.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}
