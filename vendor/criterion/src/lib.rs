//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the criterion API the PCS benches use —
//! [`Criterion::bench_function`], benchmark groups with `sample_size` and
//! `bench_with_input`, [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a plain wall-clock measurement
//! loop. No statistical analysis, HTML reports, or outlier detection:
//! each benchmark prints min / median / mean nanoseconds per iteration.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching criterion's API.
pub use std::hint::black_box;

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count and records the total
    /// wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id with a parameter only (group name supplies the function).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if !self.function.is_empty() => write!(f, "{}/{}", self.function, p),
            Some(p) => write!(f, "{p}"),
            None => write!(f, "{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

fn run_samples(label: &str, samples: usize, mut body: impl FnMut(&mut Bencher)) {
    // Calibrate the per-sample iteration count so one sample takes
    // roughly 10 ms, capped to keep heavyweight bodies (full simulator
    // runs) from dragging the suite out.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    body(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000);

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters: iters as u64,
            elapsed: Duration::ZERO,
        };
        body(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{label:<40} min {:>12.1} ns  median {:>12.1} ns  mean {:>12.1} ns  ({samples} samples × {iters} iters)",
        min, median, mean
    );
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_samples(&id.into().to_string(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_samples(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_samples(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. (No-op: kept for API compatibility.)
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `fn main` running the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
