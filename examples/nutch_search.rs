//! The paper's evaluation scenario end to end: the Nutch search engine
//! (100 searching workers on 30 nodes) under batch churn, comparing all
//! six techniques at one arrival rate.
//!
//! Run with: `cargo run --example nutch_search --release [rate] [seed]`

use pcs::controller::PcsController;
use pcs::experiments::fig6;
use pcs::techniques;
use pcs_sim::SimConfig;
use pcs_types::NodeCapacity;

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200.0);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(62015);

    let topology = fig6::topology(100);
    println!("training the PCS predictor (profiling campaign)…");
    let models = PcsController::train_for(&topology, NodeCapacity::XEON_E5645, seed)
        .expect("profiling campaign");

    println!("running six techniques at {rate} req/s…\n");
    println!(
        "{:>8} {:>18} {:>18} {:>10} {:>10}",
        "tech", "p99 component ms", "mean overall ms", "wasted", "migrations"
    );
    for technique in techniques::paper_set() {
        let config = SimConfig::paper_like(fig6::topology(100), rate, fig6::rate_seed(seed, rate));
        let report = fig6::run_cell(&config, technique.as_ref(), &models);
        println!(
            "{:>8} {:>18.2} {:>18.2} {:>10} {:>10}",
            technique.name(),
            report.component_p99_ms(),
            report.overall_mean_ms(),
            report.stats.wasted_executions,
            report.stats.migrations
        );
    }
    println!("\nExpected shape (paper Fig. 6): PCS smallest; redundancy helps at");
    println!("light load and collapses at heavy load (RED-5 worst); reissue sits");
    println!("between, with the conservative RI-99 degrading least.");
}
