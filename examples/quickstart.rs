//! Quickstart: train the PCS predictor, run a small Nutch-like service
//! under batch-job churn with and without PCS scheduling, and compare.
//!
//! Run with: `cargo run --example quickstart --release`

use pcs::controller::PcsController;
use pcs_core::{MatrixConfig, SchedulerConfig};
use pcs_sim::{BasicPolicy, NoopScheduler, SimConfig, Simulation};
use pcs_types::NodeCapacity;
use pcs_workloads::ServiceTopology;

fn main() {
    // A small search service: 1 segmenter → 16 searchers → 1 aggregator.
    let topology = ServiceTopology::nutch(16);

    // 1. Offline profiling: train one Eq. 1 regression per component
    //    class by co-locating a profiled component with catalog batch jobs
    //    (paper §IV-A / §VI-D: one profile per homogeneous class).
    println!("profiling component classes…");
    let models = PcsController::train_for(&topology, NodeCapacity::XEON_E5645, 7)
        .expect("profiling campaign");

    // 2. A cluster of 12 nodes with batch-job churn, serving 150 req/s.
    let mut config = SimConfig::paper_like(topology, 150.0, 7);
    config.node_count = 12;

    // 3. Baseline: no scheduling.
    let baseline = Simulation::new(
        config.clone(),
        Box::new(BasicPolicy),
        Box::new(NoopScheduler),
    )
    .run();

    // 4. PCS: predictive component-level scheduling every interval.
    let controller = PcsController::new(
        models,
        SchedulerConfig {
            epsilon_secs: 1e-6,
            max_migrations: None,
            full_rebuild: false,
        },
        MatrixConfig::default(),
    );
    let pcs = Simulation::new(config, Box::new(BasicPolicy), Box::new(controller)).run();

    println!("\n              {:>12} {:>12}", "Basic", "PCS");
    println!(
        "p99 component {:>9.2} ms {:>9.2} ms",
        baseline.component_p99_ms(),
        pcs.component_p99_ms()
    );
    println!(
        "mean overall  {:>9.2} ms {:>9.2} ms",
        baseline.overall_mean_ms(),
        pcs.overall_mean_ms()
    );
    println!("migrations    {:>12} {:>12}", 0, pcs.stats.migrations);
    let tail_gain = 100.0 * (1.0 - pcs.component_latency.p99 / baseline.component_latency.p99);
    println!("\nPCS cut the component tail latency by {tail_gain:.1}%.");
}
