//! Interference study (paper §II-B / §VI-B in miniature): profile a
//! searching component against each BigDataBench workload at several input
//! sizes, train the Eq. 1 model, and print predicted vs measured service
//! times.
//!
//! Run with: `cargo run --example interference_study --release`

use pcs_monitor::SamplerConfig;
use pcs_regression::{CombinedServiceTimeModel, TrainingConfig};
use pcs_sim::profiler::{measure_mean_service, profile_class};
use pcs_types::NodeCapacity;
use pcs_workloads::{BatchWorkload, JobSpec, ServiceTopology};

fn main() {
    let topology = ServiceTopology::nutch(1);
    let classes = topology.classes();
    let searching = 1usize;
    let capacity = NodeCapacity::XEON_E5645;
    let sizes = [64.0, 512.0, 2048.0, 8192.0];

    println!("searching-component service time under co-located batch jobs");
    println!("(predicted by the Eq. 1 regression vs measured ground truth)\n");
    println!(
        "{:>18} {:>9} {:>13} {:>12} {:>11} {:>8}",
        "workload", "input MB", "demand cores", "predicted ms", "actual ms", "err %"
    );

    for workload in BatchWorkload::ALL {
        // Train on a grid of this workload's sizes (historical runs).
        let schedule: Vec<_> = workload
            .figure5_input_grid()
            .iter()
            .map(|&mb| JobSpec::new(workload, mb).capped_to_vm(4.0).demand)
            .collect();
        let samples = profile_class(
            classes,
            searching,
            capacity,
            &schedule,
            40,
            40,
            SamplerConfig::PAPER,
            3,
        );
        let model = CombinedServiceTimeModel::train(&samples, TrainingConfig::default()).unwrap();

        for &mb in &sizes {
            let job = JobSpec::new(workload, mb).capped_to_vm(4.0);
            let own = classes[searching].own_demand;
            let u = capacity.normalize(&(job.demand + own));
            let predicted = model.predict_clamped(&u) * 1e3;
            let actual =
                measure_mean_service(classes, searching, capacity, job.demand, 20_000, 11) * 1e3;
            let err = 100.0 * ((predicted - actual) / actual).abs();
            println!(
                "{:>18} {:>9.0} {:>13.2} {:>12.3} {:>11.3} {:>8.2}",
                workload.name(),
                mb,
                job.demand.cores,
                predicted,
                actual,
                err
            );
        }
        // The Eq. 1 weights reveal which resource dominates for this job.
        let w = model.weights();
        println!(
            "{:>18} weights: core {:.2}  cache {:.2}  disk {:.2}  net {:.2}\n",
            "", w[0], w[1], w[2], w[3]
        );
    }
}
