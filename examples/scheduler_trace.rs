//! Scheduler trace: a small, readable walk through the paper's Figures 3
//! and 4 — the performance matrix, the greedy pick with its self-gain
//! tie-break, and the Algorithm 2 update after a migration.
//!
//! Run with: `cargo run --example scheduler_trace --release`

use pcs_core::{
    ClassModelSet, ComponentInput, ComponentScheduler, MatrixConfig, MatrixInputs, NodeInput,
    PerformanceMatrix, SchedulerConfig,
};
use pcs_regression::{CombinedServiceTimeModel, SampleSet, TrainingConfig};
use pcs_types::{ComponentId, ContentionVector, NodeCapacity, NodeId, ResourceVector};

/// A class whose service time is exactly 1 ms · (1 + core usage): easy to
/// follow by eye.
fn linear_models() -> ClassModelSet {
    let mut set = SampleSet::new();
    for i in 0..60 {
        let t = i as f64 / 30.0;
        set.push(ContentionVector::new(t, 0.0, 0.0, 0.0), 0.001 * (1.0 + t));
    }
    ClassModelSet::new(vec![CombinedServiceTimeModel::train(
        &set,
        TrainingConfig::default(),
    )
    .unwrap()])
}

fn main() {
    // Like the paper's Figure 3: a 3-stage service; stage 2 is
    // parallelised into two components (c1, c2 here). Four nodes with
    // different external load.
    let node_loads = [7.0, 5.0, 2.0, 0.0];
    let placement = [0usize, 0, 1, 2]; // c0..c3 on n0, n0, n1, n2
    let stages = [0usize, 1, 1, 2];

    let nodes: Vec<NodeInput> = node_loads
        .iter()
        .enumerate()
        .map(|(j, &cores)| NodeInput {
            id: NodeId::from_index(j),
            capacity: NodeCapacity::XEON_E5645,
            demand: ResourceVector::new(cores, 0.0, 0.0, 0.0),
            samples: vec![],
        })
        .collect();
    let components: Vec<ComponentInput> = placement
        .iter()
        .zip(stages)
        .enumerate()
        .map(|(i, (&node, stage))| ComponentInput {
            id: ComponentId::from_index(i),
            class: 0,
            stage,
            node: NodeId::from_index(node),
            demand: ResourceVector::new(1.0, 0.0, 0.0, 0.0),
            arrival_rate: 100.0,
            scv: 1.0,
        })
        .collect();
    let inputs = MatrixInputs {
        nodes,
        components,
        stage_count: 3,
    };

    let models = linear_models();
    let matrix = PerformanceMatrix::build(&inputs, &models, MatrixConfig::default());

    println!("predicted component latencies (ms):");
    for i in 0..4 {
        let c = ComponentId::from_index(i);
        println!(
            "  c{i} (stage {}) on n{}: {:.3}",
            inputs.components[i].stage,
            matrix.allocation()[i].index(),
            matrix.component_latency(c) * 1e3
        );
    }
    println!(
        "predicted overall latency (Eq. 4): {:.3} ms\n",
        matrix.overall_latency() * 1e3
    );

    println!("performance matrix L[i][j] = predicted overall reduction (ms):");
    print!("{:>6}", "");
    for j in 0..4 {
        print!("{:>10}", format!("n{j}"));
    }
    println!();
    for i in 0..4 {
        print!("{:>6}", format!("c{i}"));
        for j in 0..4 {
            print!(
                "{:>10.3}",
                matrix.gain(ComponentId::from_index(i), NodeId::from_index(j)) * 1e3
            );
        }
        println!();
    }

    // Run the greedy loop and narrate each decision (Figure 4's loop).
    let scheduler = ComponentScheduler::new(SchedulerConfig {
        epsilon_secs: 1e-5,
        max_migrations: None,
        full_rebuild: false,
    });
    let mut matrix = PerformanceMatrix::build(&inputs, &models, MatrixConfig::default());
    let outcome = scheduler.run(&mut matrix);

    println!("\ngreedy loop (Algorithm 1):");
    for (step, d) in outcome.decisions.iter().enumerate() {
        println!(
            "  {}. migrate {} from {} to {}: overall gain {:.3} ms, own gain {:.3} ms",
            step + 1,
            d.component,
            d.from,
            d.to,
            d.predicted_gain * 1e3,
            d.predicted_self_gain * 1e3
        );
    }
    println!(
        "\npredicted overall latency: {:.3} ms -> {:.3} ms ({} iterations, analysis {:?}, search {:?})",
        outcome.predicted_before * 1e3,
        outcome.predicted_after * 1e3,
        outcome.iterations,
        outcome.analysis_time,
        outcome.search_time
    );
}
