//! CLI input validation: malformed grids are rejected up front with a
//! clear error instead of silently producing an empty (or crashing)
//! sweep. Drives the real `pcs` binary via `CARGO_BIN_EXE_pcs`.

use std::process::{Command, Output};

fn pcs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pcs"))
        .args(args)
        .output()
        .expect("pcs binary runs")
}

fn rejected_with(args: &[&str], needle: &str) {
    let out = pcs(args);
    assert!(!out.status.success(), "`pcs {}` must fail", args.join(" "));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "`pcs {}` stderr must mention `{needle}`:\n{stderr}",
        args.join(" ")
    );
}

#[test]
fn empty_rates_list_is_rejected() {
    rejected_with(
        &["run", "--scenario", "fig6", "--rates", ""],
        "at least one rate",
    );
    rejected_with(
        &["run", "--scenario", "fig6", "--rates", "  "],
        "at least one rate",
    );
}

#[test]
fn non_positive_and_malformed_rates_are_rejected() {
    rejected_with(
        &["run", "--scenario", "fig6", "--rates", "0,50"],
        "finite and positive",
    );
    rejected_with(
        &["run", "--scenario", "fig6", "--rates", "50,-3"],
        "finite and positive",
    );
    rejected_with(
        &["run", "--scenario", "fig6", "--rates", "50,fast"],
        "--rates",
    );
}

#[test]
fn zero_repeats_is_rejected() {
    rejected_with(
        &["run", "--scenario", "fig7", "--repeats", "0"],
        "at least 1",
    );
}

#[test]
fn zero_threads_is_rejected() {
    // A zero-thread sweep would silently fall back to one worker; the
    // runner knob is validated up front like the grid knobs.
    rejected_with(
        &["run", "--scenario", "fig6", "--threads", "0"],
        "at least 1",
    );
    rejected_with(
        &["run", "--scenario", "fig6", "--threads", "two"],
        "--threads",
    );
}

#[test]
fn zero_group_cap_is_rejected() {
    rejected_with(
        &["run", "--scenario", "scale", "--group-cap", "0"],
        "1..=1024",
    );
    rejected_with(
        &["run", "--scenario", "scale", "--group-cap", "1025"],
        "1..=1024",
    );
    rejected_with(
        &["run", "--scenario", "scale", "--group-cap", "many"],
        "--group-cap",
    );
}

#[test]
fn degenerate_scale_sizes_are_rejected() {
    rejected_with(
        &["run", "--scenario", "scale", "--sizes", ""],
        "at least one cluster size",
    );
    rejected_with(
        &["run", "--scenario", "scale", "--sizes", "100,0"],
        "must be >= 8",
    );
    rejected_with(
        &["run", "--scenario", "scale", "--sizes", "100,4"],
        "must be >= 8",
    );
    rejected_with(
        &["run", "--scenario", "scale", "--sizes", "100,tiny"],
        "--sizes",
    );
}

#[test]
fn scale_knobs_are_rejected_on_other_scenarios() {
    // --sizes/--group-cap silently ignored by a scenario without a
    // cluster-size grid would poison report provenance, like a silently
    // ignored --techniques.
    rejected_with(
        &["run", "--scenario", "fig6", "--group-cap", "64"],
        "apply to: scale",
    );
    rejected_with(
        &["run", "--scenario", "diurnal", "--sizes", "100"],
        "apply to: scale",
    );
}

#[test]
fn zero_and_malformed_shards_are_rejected() {
    // `--shards 0` is ambiguous (the serial engine is spelled by omitting
    // the flag), so the CLI rejects it instead of guessing.
    rejected_with(
        &["run", "--scenario", "scale", "--shards", "0"],
        "at least 1",
    );
    rejected_with(
        &["run", "--scenario", "scale", "--shards", "many"],
        "--shards",
    );
}

#[test]
fn shards_beyond_the_smallest_cluster_are_rejected() {
    // Every shard owns at least one node; a 9-way split of an 8-node
    // cluster is caught when the scale plan is built.
    rejected_with(
        &[
            "run",
            "--scenario",
            "scale",
            "--smoke",
            "--sizes",
            "8",
            "--shards",
            "9",
        ],
        "cannot exceed the smallest cluster size",
    );
}

#[test]
fn shards_are_rejected_on_scenarios_that_do_not_thread_the_knob() {
    // Only the scale scenario routes `SweepParams::shards` into its sim
    // configs; silently ignoring the flag elsewhere would claim an LP run
    // that never happened.
    rejected_with(
        &["run", "--scenario", "fig6", "--shards", "2"],
        "applies to: scale",
    );
    rejected_with(
        &["run", "--scenario", "failures", "--shards", "4"],
        "applies to: scale",
    );
}

#[test]
fn out_of_range_autoscaler_knobs_are_rejected() {
    // The autoscaler's control-loop knobs are validated at parse time,
    // before any model training: a target utilisation outside (0, 1] or
    // a non-positive cooldown can never build a valid AutoscaleConfig.
    rejected_with(
        &["run", "--scenario", "elastic", "--target-util", "0"],
        "in (0, 1]",
    );
    rejected_with(
        &["run", "--scenario", "elastic", "--target-util", "1.5"],
        "in (0, 1]",
    );
    rejected_with(
        &["run", "--scenario", "elastic", "--target-util", "-0.3"],
        "in (0, 1]",
    );
    rejected_with(
        &["run", "--scenario", "elastic", "--target-util", "hot"],
        "--target-util",
    );
    rejected_with(
        &["run", "--scenario", "elastic", "--cooldown", "0"],
        "positive number of seconds",
    );
    rejected_with(
        &["run", "--scenario", "elastic", "--cooldown", "-2"],
        "positive number of seconds",
    );
    rejected_with(
        &["run", "--scenario", "elastic", "--cooldown", "inf"],
        "positive number of seconds",
    );
    rejected_with(
        &["run", "--scenario", "elastic", "--cooldown", "soon"],
        "--cooldown",
    );
}

#[test]
fn autoscaler_knobs_are_rejected_on_non_elastic_scenarios() {
    // Only the elastic scenario routes the autoscaler knobs into its sim
    // configs; silently ignoring them elsewhere would claim an elastic
    // run that never happened.
    rejected_with(
        &["run", "--scenario", "fig6", "--target-util", "0.6"],
        "apply to: elastic",
    );
    rejected_with(
        &["run", "--scenario", "failures", "--cooldown", "4"],
        "apply to: elastic",
    );
}

#[test]
fn shards_are_rejected_on_the_elastic_scenario() {
    // Membership churn is outside the LP engine's v1 scope (the engine
    // itself panics on an autoscale config), so the CLI refuses the
    // combination up front like every other shards-less scenario.
    rejected_with(
        &["run", "--scenario", "elastic", "--shards", "2"],
        "applies to: scale",
    );
}

#[test]
fn out_of_range_imperfect_knobs_are_rejected() {
    // The imperfect-information dials are validated at parse time: a
    // negative heartbeat timeout, an error rate outside [0, 1] or a
    // prediction-noise sigma outside 0..=MAX can never configure a valid
    // detector or noise wrapper.
    rejected_with(
        &["run", "--scenario", "imperfect", "--detector-latency", "-1"],
        "non-negative number of seconds",
    );
    rejected_with(
        &[
            "run",
            "--scenario",
            "imperfect",
            "--detector-latency",
            "inf",
        ],
        "non-negative number of seconds",
    );
    rejected_with(
        &[
            "run",
            "--scenario",
            "imperfect",
            "--detector-latency",
            "soon",
        ],
        "--detector-latency",
    );
    rejected_with(
        &["run", "--scenario", "imperfect", "--fp-rate", "1.5"],
        "in [0, 1]",
    );
    rejected_with(
        &["run", "--scenario", "imperfect", "--fp-rate", "-0.1"],
        "in [0, 1]",
    );
    rejected_with(
        &["run", "--scenario", "imperfect", "--fn-rate", "2"],
        "in [0, 1]",
    );
    rejected_with(
        &["run", "--scenario", "imperfect", "--fn-rate", "often"],
        "--fn-rate",
    );
    rejected_with(
        &["run", "--scenario", "imperfect", "--noise", "-0.5"],
        "sigma must be in 0..=",
    );
    rejected_with(
        &["run", "--scenario", "imperfect", "--noise", "9"],
        "sigma must be in 0..=",
    );
    rejected_with(
        &["run", "--scenario", "imperfect", "--noise", "nan"],
        "sigma must be in 0..=",
    );
    rejected_with(
        &["run", "--scenario", "imperfect", "--noise", "lots"],
        "--noise",
    );
}

#[test]
fn imperfect_knobs_are_rejected_on_other_scenarios() {
    // Only the imperfect scenario routes the detector and noise dials
    // into its sim configs; silently ignoring them elsewhere would claim
    // an imperfect-information run that never happened.
    rejected_with(
        &["run", "--scenario", "fig6", "--detector-latency", "1"],
        "apply to: imperfect",
    );
    rejected_with(
        &["run", "--scenario", "failures", "--fp-rate", "0.01"],
        "apply to: imperfect",
    );
    rejected_with(
        &["run", "--scenario", "elastic", "--fn-rate", "0.05"],
        "apply to: imperfect",
    );
    rejected_with(
        &["run", "--scenario", "diurnal", "--noise", "0.3"],
        "apply to: imperfect",
    );
}

#[test]
fn noise_cannot_combine_with_a_technique_override() {
    // --noise works by swapping the default grid's PCS cell for
    // `pcs-n<sigma>`; a --techniques override replaces that grid, so the
    // flag would silently do nothing. The error points at the technique
    // spelling instead.
    rejected_with(
        &[
            "run",
            "--scenario",
            "imperfect",
            "--noise",
            "0.3",
            "--techniques",
            "basic,pcs",
        ],
        "pcs-n<sigma>",
    );
    // Flag order must not matter.
    rejected_with(
        &[
            "run",
            "--scenario",
            "imperfect",
            "--techniques",
            "basic,pcs",
            "--noise",
            "0.3",
        ],
        "cannot combine with --techniques",
    );
}

#[test]
fn observe_companion_flags_require_observe() {
    // --top-k and --trace-out configure the observability layer; without
    // --observe they would silently do nothing, so the CLI refuses.
    rejected_with(
        &["run", "--scenario", "fig6", "--top-k", "3"],
        "--top-k requires --observe",
    );
    rejected_with(
        &["run", "--scenario", "fig6", "--trace-out", "/tmp/t.json"],
        "--trace-out requires --observe",
    );
}

#[test]
fn zero_and_malformed_top_k_are_rejected() {
    rejected_with(
        &["run", "--scenario", "fig6", "--observe", "--top-k", "0"],
        "at least 1",
    );
    rejected_with(
        &["run", "--scenario", "fig6", "--observe", "--top-k", "lots"],
        "--top-k",
    );
}

#[test]
fn observe_is_rejected_on_wall_clock_scenarios() {
    // fig7 and ablation-rebuild report wall-clock timings; the layer is
    // zero-cost in simulated time but not in real time, so observe-on
    // runs would perturb exactly what they measure.
    rejected_with(
        &["run", "--scenario", "fig7", "--observe"],
        "does not support the observability layer",
    );
    rejected_with(
        &["run", "--scenario", "ablation-rebuild", "--observe"],
        "does not support the observability layer",
    );
    // fig5 runs no simulated service at all.
    rejected_with(
        &["run", "--scenario", "fig5", "--observe"],
        "does not support the observability layer",
    );
}

#[test]
fn observe_is_rejected_with_the_sharded_engine() {
    // The LP engine rejects observe configs (cross-shard timelines are
    // outside its v1 scope); the CLI refuses the combination up front.
    rejected_with(
        &["run", "--scenario", "scale", "--shards", "2", "--observe"],
        "--observe cannot combine with --shards",
    );
    // Flag order must not matter.
    rejected_with(
        &["run", "--scenario", "scale", "--observe", "--shards", "2"],
        "--observe cannot combine with --shards",
    );
}

#[test]
fn bench_knobs_are_validated() {
    rejected_with(&["bench", "--threads", "0"], "at least 1");
    rejected_with(&["bench", "--repeats", "0"], "at least 1");
    rejected_with(&["bench", "--scenarios", ""], "at least one scenario");
    rejected_with(&["bench", "--scenarios", "warp-drive"], "unknown scenario");
    rejected_with(
        &["bench", "--baseline", "/nonexistent/path.json"],
        "--baseline",
    );
}

#[test]
fn bench_check_rejects_a_partial_report() {
    // --check demands coverage of every registered family; an empty JSON
    // object parses but covers nothing.
    let dir = std::env::temp_dir().join("pcs-bench-check-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("partial.json");
    std::fs::write(&path, "{\"schema\":\"pcs-bench/1\",\"scenarios\":[]}\n").unwrap();
    let out = pcs(&["bench", "--check", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing from report"), "{stderr}");
}

#[test]
fn unknown_technique_error_names_the_new_vocabulary() {
    let out = pcs(&[
        "run",
        "--scenario",
        "failures",
        "--techniques",
        "warp-drive",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    for token in ["warp-drive", "pcs+red<k>", "pcs-b<n>"] {
        assert!(stderr.contains(token), "missing `{token}`:\n{stderr}");
    }
}

#[test]
fn list_techniques_includes_the_hybrid_and_budgeted_variants() {
    let out = pcs(&["list", "techniques"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["pcs+red2", "pcs-b1", "pcs-h64"] {
        assert!(stdout.contains(name), "missing `{name}`:\n{stdout}");
    }
}

#[test]
fn list_scenarios_includes_the_failures_and_scale_families() {
    let out = pcs(&["list", "scenarios"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["failures", "failures-rolling", "scale", "elastic"] {
        assert!(stdout.contains(name), "missing `{name}`:\n{stdout}");
    }
}
