//! Acceptance properties of the fault-injection subsystem, end to end
//! through the `failures` scenario: liveness-aware techniques re-place
//! every orphan, the predictive controller evacuates strictly faster
//! than the reactive baseline, and blind techniques visibly bleed.

use pcs::scenarios;
use pcs_harness::{run_sweep, Json, SweepOutcome, SweepParams};

fn run_failures_smoke(techniques: &[&str]) -> SweepOutcome {
    let scenario = scenarios::find("failures").expect("failures registered");
    let params = SweepParams {
        seed: scenario.default_seed(),
        threads: 2,
        smoke: true,
        techniques: Some(techniques.iter().map(|t| t.to_string()).collect()),
        ..SweepParams::default()
    };
    run_sweep(&scenario.plan(&params), &params)
}

fn cell<'a>(
    outcome: &'a SweepOutcome,
    technique: &str,
    plan: &str,
) -> &'a pcs_harness::CellOutcome {
    outcome
        .cells
        .iter()
        .find(|c| {
            c.value("technique").and_then(Json::as_str) == Some(technique)
                && c.value("plan").and_then(Json::as_str) == Some(plan)
        })
        .unwrap_or_else(|| panic!("cell {technique}/{plan} missing"))
}

const PLANS: [&str; 3] = ["single-kill", "kill-restore", "cascade"];

/// The headline acceptance: on the default seed, PCS's evacuation
/// latency is strictly below the reactive baseline's wherever both are
/// defined, and its worst case beats LL's worst case outright.
#[test]
fn pcs_evacuates_strictly_faster_than_the_reactive_baseline() {
    let outcome = run_failures_smoke(&["ll", "pcs"]);
    let mut compared = 0;
    for plan in PLANS {
        let ll = cell(&outcome, "LL", plan).value_f64("evacuation_ms");
        let pcs = cell(&outcome, "PCS", plan).value_f64("evacuation_ms");
        if let (Some(ll), Some(pcs)) = (ll, pcs) {
            assert!(
                pcs < ll,
                "{plan}: PCS evacuation ({pcs} ms) must beat LL ({ll} ms)"
            );
            compared += 1;
        }
    }
    assert!(
        compared >= 2,
        "at least two plans must yield a finite PCS-vs-LL comparison"
    );
    // The summary scalars agree.
    let scalar = |name: &str| {
        outcome
            .summary
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or_else(|| panic!("{name} missing from the summary"))
    };
    assert!(scalar("pcs_worst_evacuation_ms") < scalar("ll_worst_evacuation_ms"));
}

/// Liveness-aware techniques leave no orphan behind in any plan; the
/// blind baseline leaves the single-kill victims stranded forever and
/// loses strictly more requests than the evacuating techniques.
#[test]
fn liveness_aware_techniques_replace_every_orphan() {
    let outcome = run_failures_smoke(&["basic", "ll", "pcs"]);
    for plan in PLANS {
        for technique in ["LL", "PCS"] {
            let c = cell(&outcome, technique, plan);
            assert_eq!(
                c.value_f64("unresolved_orphans"),
                Some(0.0),
                "{technique}/{plan}: every orphan must be re-placed"
            );
        }
    }
    let basic_single = cell(&outcome, "Basic", "single-kill");
    assert!(
        basic_single.value_f64("unresolved_orphans").unwrap() > 0.0,
        "Basic never re-places a dead node's components"
    );
    assert_eq!(
        basic_single.value("evacuation_ms"),
        Some(&Json::Null),
        "an unresolved evacuation has no latency"
    );
    // Request loss: the un-evacuated partition rejects every request
    // until the end of the run, so Basic bleeds strictly more than the
    // techniques that re-place it.
    let lost = |t: &str| {
        cell(&outcome, t, "single-kill")
            .value_f64("requests_lost")
            .unwrap()
    };
    assert!(lost("Basic") > lost("LL"), "evacuation must stem the loss");
    assert!(lost("Basic") > lost("PCS"));
}

/// Kill+restore: every technique recovers by the restore at the latest,
/// so evacuation latencies are finite everywhere and bounded by the
/// downtime; migration-capable techniques recover no later than Basic.
#[test]
fn restore_bounds_every_techniques_recovery() {
    let outcome = run_failures_smoke(&["basic", "ll", "pcs"]);
    let basic = cell(&outcome, "Basic", "kill-restore")
        .value_f64("evacuation_ms")
        .expect("the restore resolves Basic's orphans");
    for technique in ["LL", "PCS"] {
        let evac = cell(&outcome, technique, "kill-restore")
            .value_f64("evacuation_ms")
            .expect("finite evacuation under kill-restore");
        assert!(
            evac <= basic,
            "{technique} must recover no later than the restore ({evac} vs {basic} ms)"
        );
    }
}

/// The budgeted controller sits between the reactive baseline and full
/// PCS on the evacuation axis: with a one-migration budget it drains a
/// multi-orphan outage one interval at a time, like LL — the churn end
/// of the gain/churn frontier.
#[test]
fn budgeted_pcs_trades_evacuation_speed_for_churn() {
    let outcome = run_failures_smoke(&["pcs-b1", "pcs"]);
    let mut slower_somewhere = false;
    for plan in PLANS {
        let budgeted = cell(&outcome, "PCS-B1", plan).value_f64("evacuation_ms");
        let full = cell(&outcome, "PCS", plan).value_f64("evacuation_ms");
        if let (Some(budgeted), Some(full)) = (budgeted, full) {
            assert!(
                budgeted >= full,
                "{plan}: a rationed budget cannot evacuate faster than unbounded PCS"
            );
            if budgeted > full {
                slower_somewhere = true;
            }
        }
        // Budget or not, no orphan may be left behind while the run has
        // intervals to spend.
        assert_eq!(
            cell(&outcome, "PCS-B1", plan).value_f64("unresolved_orphans"),
            Some(0.0)
        );
    }
    assert!(
        slower_somewhere,
        "some multi-orphan plan must show the budget's cost"
    );
}

/// The hybrid rides redundancy through the outage: a live replica
/// absorbs each replicated partition's dead primary, so it loses
/// strictly fewer requests than the unreplicated baseline (the nutch
/// frontend/backend stages are single-partition and stay vulnerable —
/// only evacuation saves those), while still evacuating every orphan.
#[test]
fn hybrid_red_loses_less_and_still_evacuates() {
    let outcome = run_failures_smoke(&["basic", "pcs+red2"]);
    let mut strictly_better = false;
    for plan in PLANS {
        let hybrid = cell(&outcome, "PCS+RED2", plan);
        assert_eq!(hybrid.value_f64("unresolved_orphans"), Some(0.0));
        let hybrid_lost = hybrid.value_f64("requests_lost").unwrap();
        let basic_lost = cell(&outcome, "Basic", plan)
            .value_f64("requests_lost")
            .unwrap();
        assert!(
            basic_lost > 0.0,
            "{plan}: the unreplicated baseline must lose requests"
        );
        assert!(
            hybrid_lost <= basic_lost,
            "{plan}: redundancy + migration cannot lose more than Basic \
             ({hybrid_lost} vs {basic_lost})"
        );
        if hybrid_lost < basic_lost {
            strictly_better = true;
        }
    }
    assert!(
        strictly_better,
        "some plan must show redundancy absorbing the outage"
    );
}
