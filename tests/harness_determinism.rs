//! Harness determinism: the acceptance property of the scenario runner.
//!
//! For a fixed seed, a scenario's rendered JSON report must be
//! byte-identical across repeated runs **and** across thread counts —
//! the work-stealing schedule may differ, the report may not. The two
//! extended scenarios (diurnal arrivals, heterogeneous capacities) are
//! the pinned examples: they exercise the widened simulation layer and
//! carry no wall-clock metrics.

use pcs::scenarios;
use pcs_harness::{run_sweep, SweepParams};

fn render(name: &str, threads: usize) -> String {
    let scenario = scenarios::find(name).expect("scenario registered");
    let params = SweepParams {
        seed: scenario.default_seed(),
        threads,
        smoke: true,
        ..SweepParams::default()
    };
    let plan = scenario.plan(&params);
    run_sweep(&plan, &params).to_json(name, &params).render()
}

fn assert_reproducible(name: &str) {
    let single = render(name, 1);
    let parallel = render(name, 3);
    let parallel_again = render(name, 3);
    assert!(
        single.contains("\"cells\""),
        "{name}: report must contain cells"
    );
    assert_eq!(
        single.as_bytes(),
        parallel.as_bytes(),
        "{name}: report must not depend on the thread count"
    );
    assert_eq!(
        parallel.as_bytes(),
        parallel_again.as_bytes(),
        "{name}: repeated runs must reproduce the report byte for byte"
    );
}

#[test]
fn diurnal_report_is_byte_identical_across_runs_and_thread_counts() {
    assert_reproducible("diurnal");
}

#[test]
fn hetero_report_is_byte_identical_across_runs_and_thread_counts() {
    assert_reproducible("hetero");
}

#[test]
fn mmpp_report_is_byte_identical_across_runs_and_thread_counts() {
    assert_reproducible("mmpp");
}

#[test]
fn failures_report_is_byte_identical_across_runs_and_thread_counts() {
    assert_reproducible("failures");
}

/// FNV-1a 64 over the rendered report: a compact byte-exact pin.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The mmpp smoke report is pinned byte-identical across PRs, not just
/// within a run: any change to the MMPP sampling path, the technique
/// specs it sweeps (Basic/LL/PCS), the seed derivation or the JSON writer
/// shows up here as a hash change and must be deliberate.
#[test]
fn mmpp_smoke_report_bytes_are_pinned() {
    let report = render("mmpp", 2);
    assert_eq!(
        fnv1a(report.as_bytes()),
        0x9ca1_1c5d_61d9_260d,
        "mmpp smoke report bytes changed; if intentional, re-pin this hash"
    );
}

/// The failures smoke report is pinned byte-identical across PRs like
/// mmpp's: any change to the fault-injection path (kill/restore
/// mechanics, failover, evacuation accounting, the seeded fault-plan
/// generators, or the techniques it sweeps) shows up here as a hash
/// change and must be deliberate.
#[test]
fn failures_smoke_report_bytes_are_pinned() {
    let report = render("failures", 2);
    assert_eq!(
        fnv1a(report.as_bytes()),
        0x02a7_42a0_3588_2d04,
        "failures smoke report bytes changed; if intentional, re-pin this hash"
    );
}

#[test]
fn different_seeds_change_the_report() {
    let scenario = scenarios::find("diurnal").unwrap();
    let params_a = SweepParams {
        seed: 1,
        threads: 2,
        smoke: true,
        ..SweepParams::default()
    };
    let params_b = SweepParams {
        seed: 2,
        ..params_a.clone()
    };
    let a = run_sweep(&scenario.plan(&params_a), &params_a).to_json("diurnal", &params_a);
    let b = run_sweep(&scenario.plan(&params_b), &params_b).to_json("diurnal", &params_b);
    assert_ne!(a.render(), b.render());
}
