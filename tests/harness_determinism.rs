//! Harness determinism: the acceptance property of the scenario runner.
//!
//! For a fixed seed, a scenario's rendered JSON report must be
//! byte-identical across repeated runs **and** across thread counts —
//! the work-stealing schedule may differ, the report may not. The two
//! extended scenarios (diurnal arrivals, heterogeneous capacities) are
//! the pinned examples: they exercise the widened simulation layer and
//! carry no wall-clock metrics.

use pcs::scenarios;
use pcs_harness::{run_sweep, SweepParams};

fn render(name: &str, threads: usize) -> String {
    let scenario = scenarios::find(name).expect("scenario registered");
    let params = SweepParams {
        seed: scenario.default_seed(),
        threads,
        smoke: true,
        ..SweepParams::default()
    };
    let plan = scenario.plan(&params);
    run_sweep(&plan, &params).to_json(name, &params).render()
}

fn assert_reproducible(name: &str) {
    let single = render(name, 1);
    let parallel = render(name, 3);
    let parallel_again = render(name, 3);
    assert!(
        single.contains("\"cells\""),
        "{name}: report must contain cells"
    );
    assert_eq!(
        single.as_bytes(),
        parallel.as_bytes(),
        "{name}: report must not depend on the thread count"
    );
    assert_eq!(
        parallel.as_bytes(),
        parallel_again.as_bytes(),
        "{name}: repeated runs must reproduce the report byte for byte"
    );
}

#[test]
fn diurnal_report_is_byte_identical_across_runs_and_thread_counts() {
    assert_reproducible("diurnal");
}

#[test]
fn hetero_report_is_byte_identical_across_runs_and_thread_counts() {
    assert_reproducible("hetero");
}

#[test]
fn mmpp_report_is_byte_identical_across_runs_and_thread_counts() {
    assert_reproducible("mmpp");
}

#[test]
fn failures_report_is_byte_identical_across_runs_and_thread_counts() {
    assert_reproducible("failures");
}

#[test]
fn failures_rolling_report_is_byte_identical_across_runs_and_thread_counts() {
    assert_reproducible("failures-rolling");
}

/// FNV-1a 64 over the rendered report: a compact byte-exact pin.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The mmpp smoke report is pinned byte-identical across PRs, not just
/// within a run: any change to the MMPP sampling path, the technique
/// specs it sweeps (Basic/LL/PCS), the seed derivation or the JSON writer
/// shows up here as a hash change and must be deliberate.
#[test]
fn mmpp_smoke_report_bytes_are_pinned() {
    let report = render("mmpp", 2);
    assert_eq!(
        fnv1a(report.as_bytes()),
        0x9ca1_1c5d_61d9_260d,
        "mmpp smoke report bytes changed; if intentional, re-pin this hash"
    );
}

/// The failures smoke report is pinned byte-identical across PRs like
/// mmpp's: any change to the fault-injection path (kill/restore
/// mechanics, failover, evacuation accounting, the seeded fault-plan
/// generators, or the techniques it sweeps) shows up here as a hash
/// change and must be deliberate.
#[test]
fn failures_smoke_report_bytes_are_pinned() {
    let report = render("failures", 2);
    assert_eq!(
        fnv1a(report.as_bytes()),
        0x02a7_42a0_3588_2d04,
        "failures smoke report bytes changed; if intentional, re-pin this hash"
    );
}

/// Every remaining comparison family's default smoke report, pinned the
/// same way. These hashes were captured **before** the PR 5 hot-path
/// overhaul (request slab, tombstone cancellation, completion slots,
/// event-key packing, O(n) summaries, contention/service-profile
/// memoisation) and must survive it bit for bit: the optimisations are
/// only legal because they change no observable float, count or
/// ordering. `ablation-rebuild` and `fig7` report wall-clock and cannot
/// be pinned.
#[test]
fn default_smoke_reports_are_pinned_across_the_optimized_hot_path() {
    for (name, pinned) in [
        ("fig6", 0xb57d_6163_a91c_1547_u64),
        ("headline", 0xff9b_f9d5_0ec6_9c43),
        ("diurnal", 0xbe38_11fb_a538_fefe),
        ("hetero", 0x7b21_a286_3ee5_954c),
    ] {
        let report = render(name, 2);
        assert_eq!(
            fnv1a(report.as_bytes()),
            pinned,
            "{name} smoke report bytes changed; if intentional, re-pin this hash"
        );
    }
}

/// The new rolling-restart family, pinned from its first release. Any
/// change to `FaultPlan::rolling_restart`, the failures-family metrics
/// or the techniques it sweeps must re-pin deliberately.
#[test]
fn failures_rolling_smoke_report_bytes_are_pinned() {
    let report = render("failures-rolling", 2);
    assert_eq!(
        fnv1a(report.as_bytes()),
        0xa6fb_9a2b_d941_1982,
        "failures-rolling smoke report bytes changed; if intentional, re-pin this hash"
    );
}

/// The cluster-scale family, pinned from its first release: the smoke
/// grid (40 nodes, two racks, deep-chain and wide-fanout under diurnal
/// arrivals, flat PCS vs PCS-H64) covers the hierarchical controller's
/// whole pipeline — rack-aware placement, rack-grouped greedy,
/// incremental matrix refresh, and the `sched_*` work counters, which
/// are pinnable precisely because they count events, not wall-clock.
#[test]
fn scale_smoke_report_bytes_are_pinned() {
    assert_reproducible("scale");
    let report = render("scale", 2);
    assert_eq!(
        fnv1a(report.as_bytes()),
        0xe3e5_7a8b_9257_51bc,
        "scale smoke report bytes changed; if intentional, re-pin this hash"
    );
}

/// The elastic-capacity family, pinned from its first release: the smoke
/// grid (12 nodes, `steady` autoscaler preset, diurnal arrivals,
/// Basic/LL/PCS) covers the whole autoscaling subsystem — warming and
/// draining membership, cold starts, drain retirement through the
/// evacuation pass, node-seconds accounting and the SLO-window counters,
/// all event-derived and thus pinnable.
#[test]
fn elastic_smoke_report_bytes_are_pinned() {
    assert_reproducible("elastic");
    let report = render("elastic", 2);
    assert_eq!(
        fnv1a(report.as_bytes()),
        0x938e_4e80_d04a_0870,
        "elastic smoke report bytes changed; if intentional, re-pin this hash"
    );
}

/// The imperfect-information family, pinned from its first release: the
/// smoke grid (6 nodes, clean + moderate levels, Basic/LL/PCS-N0.3)
/// covers all three new channels — the straggler gray rack
/// ([`FaultKind::Degrade`]), the noisy failure detector distorting hook
/// perception, and the seeded prediction noise on PCS's demand
/// estimates — plus the clean level's cells, which must stay
/// byte-identical to a pristine world.
#[test]
fn imperfect_smoke_report_bytes_are_pinned() {
    assert_reproducible("imperfect");
    let report = render("imperfect", 2);
    assert_eq!(
        fnv1a(report.as_bytes()),
        0xcfdd_31f8_7914_43e4,
        "imperfect smoke report bytes changed; if intentional, re-pin this hash"
    );
}

fn render_observed(name: &str, threads: usize, top_k: usize) -> String {
    let scenario = scenarios::find(name).expect("scenario registered");
    let params = SweepParams {
        seed: scenario.default_seed(),
        threads,
        smoke: true,
        observe: Some(top_k),
        ..SweepParams::default()
    };
    let plan = scenario.plan(&params);
    run_sweep(&plan, &params).to_json(name, &params).render()
}

/// The observability layer's determinism contract, both directions: an
/// observe-on report is itself byte-reproducible across thread counts
/// and pinned across PRs (the timelines, blame buckets, series rows and
/// audits are all event-derived), while the observe-off pins above prove
/// the layer's *absence* still produces the historical bytes. The two
/// reports differ only by the `observe_override` provenance key and the
/// per-cell `observe` metrics.
#[test]
fn observed_fig6_smoke_report_is_thread_invariant_and_pinned() {
    let single = render_observed("fig6", 1, 3);
    let parallel = render_observed("fig6", 3, 3);
    assert_eq!(
        single.as_bytes(),
        parallel.as_bytes(),
        "observed fig6 report must not depend on the thread count"
    );
    assert!(
        single.contains("\"observe_override\":3") && single.contains("\"observe\":"),
        "report must carry the observe provenance and metrics"
    );
    assert_eq!(
        fnv1a(single.as_bytes()),
        0xd195_527c_eb5e_8cd5,
        "observed fig6 smoke report bytes changed; if intentional, re-pin this hash"
    );
}

fn render_scale_with_shards(shards: usize, threads: usize) -> String {
    let scenario = scenarios::find("scale").expect("scenario registered");
    let params = SweepParams {
        seed: scenario.default_seed(),
        threads,
        smoke: true,
        shards: Some(shards),
        ..SweepParams::default()
    };
    let plan = scenario.plan(&params);
    run_sweep(&plan, &params).to_json("scale", &params).render()
}

/// Erases the shard-count provenance keys so reports from different shard
/// counts can be compared byte for byte: the count appears in exactly two
/// places (the per-cell `shards` coordinate and the top-level
/// `shards_override`), and everything else must be invariant.
fn normalize_shards(report: &str, shards: usize) -> String {
    report
        .replace(&format!("\"shards\":{shards}"), "\"shards\":S")
        .replace(
            &format!("\"shards_override\":{shards}"),
            "\"shards_override\":S",
        )
}

/// The sharded LP engine's acceptance property (and its cross-PR pin):
/// the scale smoke report is byte-identical for every shard count — the
/// partition of the cluster into logical processes and the number of
/// worker threads executing them are both unobservable — and the bytes
/// themselves are pinned from the engine's first release. The LP
/// trajectory is deliberately distinct from the serial engine's (shared
/// global RNG order cannot be sharded), so it gets its own hash, not
/// `scale_smoke_report_bytes_are_pinned`'s.
#[test]
fn scale_lp_smoke_report_is_shard_count_invariant_and_pinned() {
    let base = normalize_shards(&render_scale_with_shards(1, 2), 1);
    for shards in [2usize, 4] {
        let other = normalize_shards(&render_scale_with_shards(shards, 2), shards);
        assert_eq!(
            base.as_bytes(),
            other.as_bytes(),
            "scale LP report must not depend on the shard count (shards={shards})"
        );
    }
    // Thread-count invariance on top: the sweep runner's work stealing
    // and the LP engine's executor choice both leave the bytes alone.
    assert_eq!(
        render_scale_with_shards(2, 2).as_bytes(),
        render_scale_with_shards(2, 1).as_bytes(),
        "scale LP report must not depend on the sweep thread count"
    );
    assert_eq!(
        fnv1a(base.as_bytes()),
        0x0109_4f6b_0a8a_0c2f,
        "scale LP smoke report bytes changed; if intentional, re-pin this hash"
    );
}

#[test]
fn different_seeds_change_the_report() {
    let scenario = scenarios::find("diurnal").unwrap();
    let params_a = SweepParams {
        seed: 1,
        threads: 2,
        smoke: true,
        ..SweepParams::default()
    };
    let params_b = SweepParams {
        seed: 2,
        ..params_a.clone()
    };
    let a = run_sweep(&scenario.plan(&params_a), &params_a).to_json("diurnal", &params_a);
    let b = run_sweep(&scenario.plan(&params_b), &params_b).to_json("diurnal", &params_b);
    assert_ne!(a.render(), b.render());
}
