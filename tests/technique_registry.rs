//! The technique registry's acceptance properties: exact name
//! round-trips (including property-tested family parameters), CLI-style
//! technique selection on sweep scenarios, and the new baselines actually
//! running in the extended scenarios.

use pcs::scenarios;
use pcs::techniques::{self, TechniqueSpec};
use pcs_harness::{run_sweep, Json, SweepParams};
use proptest::prelude::*;

/// Round-trip equivalence: canonical name and replication agree.
fn round_trips(spec: &dyn TechniqueSpec) {
    let reparsed =
        techniques::parse(&spec.name()).unwrap_or_else(|e| panic!("{} parses: {e}", spec.name()));
    assert_eq!(reparsed.name(), spec.name());
    assert_eq!(reparsed.replication(), spec.replication());
}

#[test]
fn every_registered_technique_round_trips() {
    for spec in techniques::registry() {
        round_trips(spec.as_ref());
    }
    // The sets are drawn from the registry's vocabulary too.
    for set in [
        techniques::paper_set(),
        techniques::smoke_set(),
        techniques::extended_set(),
        techniques::extended_smoke_set(),
    ] {
        for spec in set {
            round_trips(spec.as_ref());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn red_family_round_trips(k in 2usize..=8) {
        round_trips(techniques::red(k).as_ref());
    }

    #[test]
    fn ri_family_round_trips(percent_centi in 1u32..=9999) {
        // Percentiles on a 0.01% grid across (0, 100): covers the paper's
        // 90/99, the ambiguous 99.5 vs 99.51 pair, and everything the CLI
        // can reasonably be handed.
        let percent = percent_centi as f64 / 100.0;
        round_trips(techniques::ri(percent).as_ref());
    }

    #[test]
    fn pcs_noisy_family_round_trips(sigma_centi in 0u32..=400) {
        // Sigmas on a 0.01 grid across 0..=MAX_NOISE_SIGMA: covers the
        // imperfect levels' 0.1/0.3/0.6, the σ = 0 identity case and the
        // ceiling.
        let sigma = sigma_centi as f64 / 100.0;
        round_trips(techniques::pcs_noisy(sigma).as_ref());
    }

    #[test]
    fn ri_integral_percents_render_integrally(percent in 1u32..=99) {
        // A CLI token like `ri-29` must name itself `RI-29`, never
        // `RI-28.999999999999996` (the fraction-unit regression).
        let spec = techniques::parse(&format!("ri-{percent}")).unwrap();
        prop_assert_eq!(spec.name(), format!("RI-{percent}"));
    }
}

#[test]
fn ri_display_disambiguates_close_percentiles() {
    // Regression: the old `{:.0}` rendering (of the equivalent fractions
    // 0.995 and 0.9951) collapsed both to "RI-100".
    let a = techniques::ri(99.5);
    let b = techniques::ri(99.51);
    assert_eq!(a.name(), "RI-99.5");
    assert_eq!(b.name(), "RI-99.51");
    round_trips(a.as_ref());
    round_trips(b.as_ref());
}

#[test]
fn pcs_noisy_display_renders_minimally() {
    // The sigma renders with no trailing zeros (the CLI token and the
    // display name must agree byte for byte for the round-trip).
    assert_eq!(techniques::pcs_noisy(0.0).name(), "PCS-N0");
    assert_eq!(techniques::pcs_noisy(0.3).name(), "PCS-N0.3");
    assert_eq!(techniques::pcs_noisy(1.0).name(), "PCS-N1");
    let parsed = techniques::parse("pcs-n0.25").unwrap();
    assert_eq!(parsed.name(), "PCS-N0.25");
    round_trips(parsed.as_ref());
}

/// `--techniques basic,pcs` on fig6 must select exactly those columns, in
/// order, for every rate.
#[test]
fn fig6_technique_selection_controls_the_columns() {
    let scenario = scenarios::find("fig6").expect("fig6 registered");
    let params = SweepParams {
        seed: 1,
        smoke: true,
        techniques: Some(vec!["basic".to_string(), "pcs".to_string()]),
        ..SweepParams::default()
    };
    let plan = scenario.plan(&params);
    let techniques_per_cell: Vec<&Json> = plan
        .cells
        .iter()
        .map(|cell| {
            cell.params
                .iter()
                .find(|(k, _)| k == "technique")
                .map(|(_, v)| v)
                .expect("fig6 cells carry a technique param")
        })
        .collect();
    // Smoke mode runs one rate; the technique axis is exactly basic,pcs.
    assert_eq!(
        techniques_per_cell,
        vec![&Json::from("Basic"), &Json::from("PCS")]
    );
}

#[test]
fn unknown_technique_names_are_rejected_with_the_vocabulary() {
    let error = techniques::parse_list("basic,warp-drive,pcs").unwrap_err();
    let message = error.to_string();
    assert!(message.contains("warp-drive"));
    assert!(message.contains("valid techniques"));
    assert!(message.contains("oracle"), "{message}");
}

/// The new baselines run end to end in the extended scenarios: `ll` and
/// `oracle` in diurnal, `cap` in hetero, and their cells land in the
/// report with real measurements.
#[test]
fn new_baselines_run_in_diurnal_and_hetero() {
    let cases = [
        ("diurnal", vec!["ll".to_string(), "oracle".to_string()]),
        ("hetero", vec!["cap".to_string(), "pcs".to_string()]),
    ];
    for (name, selection) in cases {
        let scenario = scenarios::find(name).expect("scenario registered");
        let params = SweepParams {
            seed: scenario.default_seed(),
            threads: 2,
            smoke: true,
            techniques: Some(selection.clone()),
            ..SweepParams::default()
        };
        let outcome = run_sweep(&scenario.plan(&params), &params);
        assert_eq!(
            outcome.cells.len(),
            selection.len(),
            "{name}: one cell per technique"
        );
        for (cell, wanted) in outcome.cells.iter().zip(&selection) {
            let technique = cell
                .value("technique")
                .and_then(Json::as_str)
                .expect("technique param");
            assert_eq!(
                technique.to_lowercase(),
                *wanted,
                "{name}: cells follow the selection order"
            );
            let completed = cell
                .value_f64("requests_completed")
                .expect("requests_completed metric");
            assert!(
                completed > 100.0,
                "{name}/{technique}: the cell must actually serve traffic ({completed})"
            );
        }
        // The selection is recorded in the report's provenance.
        let report = outcome.to_json(name, &params).render();
        assert!(
            report.contains("\"techniques_override\""),
            "{name}: report must record the technique selection"
        );
    }
}

/// The oracle must order at least as much scheduling activity as plain
/// PCS monitoring allows — it sees demand without noise, so on the same
/// trace it should act (the exact counts are scenario-dependent).
#[test]
fn oracle_and_ll_schedule_real_migrations_under_churn() {
    let scenario = scenarios::find("mmpp").expect("mmpp registered");
    let params = SweepParams {
        seed: scenario.default_seed(),
        threads: 2,
        smoke: true,
        techniques: Some(vec![
            "ll".to_string(),
            "oracle".to_string(),
            "pcs".to_string(),
        ]),
        ..SweepParams::default()
    };
    let outcome = run_sweep(&scenario.plan(&params), &params);
    for cell in &outcome.cells {
        let technique = cell.value("technique").and_then(Json::as_str).unwrap();
        let migrations = cell.value_f64("migrations").unwrap();
        assert!(
            migrations > 0.0,
            "{technique} must migrate under bursty churn"
        );
    }
}
