//! End-to-end integration tests: the paper's qualitative claims, asserted
//! against full simulation runs. These are the load-bearing checks that
//! the reproduction actually reproduces.

use pcs::controller::PcsController;
use pcs::experiments::fig6;
use pcs::techniques::{self, TechniqueRef};
use pcs_core::ClassModelSet;
use pcs_sim::SimConfig;
use pcs_types::{NodeCapacity, SimDuration};

fn trained_models(seed: u64) -> ClassModelSet {
    let topology = fig6::topology(48);
    PcsController::train_for(&topology, NodeCapacity::XEON_E5645, seed).expect("profiling campaign")
}

fn cell(
    models: &ClassModelSet,
    technique: &TechniqueRef,
    rate: f64,
    seed: u64,
) -> pcs_sim::RunReport {
    let mut config = SimConfig::paper_like(fig6::topology(48), rate, seed);
    config.node_count = 16;
    config.horizon = SimDuration::from_secs(40);
    config.warmup = SimDuration::from_secs(8);
    fig6::run_cell(&config, technique.as_ref(), models)
}

#[test]
fn pcs_beats_basic_under_churn() {
    let models = trained_models(101);
    let seeds = [11u64, 23, 47];
    let mut basic_tail = 0.0;
    let mut pcs_tail = 0.0;
    let mut basic_overall = 0.0;
    let mut pcs_overall = 0.0;
    for &seed in &seeds {
        let basic = cell(&models, &techniques::basic(), 300.0, seed);
        let pcs = cell(&models, &techniques::pcs(), 300.0, seed);
        assert!(pcs.stats.migrations > 0, "PCS must act under churn");
        basic_tail += basic.component_latency.p99;
        pcs_tail += pcs.component_latency.p99;
        basic_overall += basic.overall_latency.mean;
        pcs_overall += pcs.overall_latency.mean;
    }
    assert!(
        pcs_tail < basic_tail,
        "PCS p99 {:.2}ms must beat Basic {:.2}ms (3-seed sum)",
        pcs_tail * 1e3,
        basic_tail * 1e3
    );
    assert!(
        pcs_overall < basic_overall,
        "PCS overall {:.2}ms must beat Basic {:.2}ms (3-seed sum)",
        pcs_overall * 1e3,
        basic_overall * 1e3
    );
}

#[test]
fn redundancy_crossover_helps_light_hurts_heavy() {
    // The paper's central observation about RED-k: some latency reduction
    // under light load, severe deterioration under heavy load.
    let models = trained_models(102);
    let light_basic = cell(&models, &techniques::basic(), 10.0, 5);
    let light_red = cell(&models, &techniques::red(3), 10.0, 5);
    assert!(
        light_red.overall_latency.mean < light_basic.overall_latency.mean * 1.1,
        "at light load RED-3 must be comparable or better: {:.2} vs {:.2} ms",
        light_red.overall_mean_ms(),
        light_basic.overall_mean_ms()
    );

    let heavy_basic = cell(&models, &techniques::basic(), 500.0, 5);
    let heavy_red5 = cell(&models, &techniques::red(5), 500.0, 5);
    assert!(
        heavy_red5.overall_latency.mean > heavy_basic.overall_latency.mean * 2.0,
        "at heavy load RED-5 must collapse: {:.2} vs {:.2} ms",
        heavy_red5.overall_mean_ms(),
        heavy_basic.overall_mean_ms()
    );
    assert!(
        heavy_red5.stats.wasted_executions > 0,
        "the collapse mechanism is wasted duplicate executions"
    );
}

#[test]
fn conservative_reissue_degrades_less_than_aggressive_redundancy() {
    // Paper: "this conservative reissue technique causes less performance
    // deterioration when load becomes heavier."
    let models = trained_models(103);
    let red5 = cell(&models, &techniques::red(5), 500.0, 9);
    let ri99 = cell(&models, &techniques::ri(99.0), 500.0, 9);
    assert!(
        ri99.overall_latency.mean < red5.overall_latency.mean,
        "RI-99 {:.2}ms must degrade less than RED-5 {:.2}ms at 500 req/s",
        ri99.overall_mean_ms(),
        red5.overall_mean_ms()
    );
    assert!(
        ri99.stats.reissues > 0,
        "RI-99 must actually reissue under heavy load"
    );
    assert!(
        ri99.stats.wasted_executions < red5.stats.wasted_executions / 4,
        "reissue wastes far fewer executions than 5-way redundancy"
    );
}

#[test]
fn identical_seeds_reproduce_identical_reports() {
    let models = trained_models(104);
    let a = cell(&models, &techniques::pcs(), 200.0, 77);
    let b = cell(&models, &techniques::pcs(), 200.0, 77);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.component_latency.count, b.component_latency.count);
    assert!((a.component_latency.p99 - b.component_latency.p99).abs() < 1e-15);
    assert!((a.overall_latency.mean - b.overall_latency.mean).abs() < 1e-15);
}

#[test]
fn every_request_is_accounted_for() {
    let models = trained_models(105);
    for technique in [
        techniques::basic(),
        techniques::red(3),
        techniques::ri(90.0),
        techniques::pcs(),
    ] {
        let report = cell(&models, &technique, 100.0, 31);
        assert!(
            report.stats.requests_completed > 1000,
            "{}: too few completions",
            technique.name()
        );
        assert_eq!(
            report.stats.requests_censored,
            0,
            "{}: requests lost at this comfortable load",
            technique.name()
        );
    }
}
