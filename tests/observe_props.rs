//! Acceptance properties of the observability layer, end to end through
//! real simulations: with a huge top-K (retain every timeline), each
//! retained critical path must telescope from arrival to completion and
//! sum **bit-exactly** (integer microseconds) to the recorded end-to-end
//! latency, the tail-vs-median attribution must be recomputable from the
//! timelines, and the time-series/audit streams must be well-formed —
//! across random techniques (Basic/LL/PCS, RED-k replication, RI-p
//! reissues) and random disruptions (one-shot kill, kill+restore,
//! autoscale warming/draining).

use pcs::controller::PcsController;
use pcs::experiments::fig6;
use pcs::techniques::{self, TechniqueRef};
use pcs_core::ClassModelSet;
use pcs_sim::{AutoscaleConfig, FaultPlan, RunReport, SegmentKind};
use pcs_types::{NodeCapacity, SimDuration, SimTime};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One trained model set shared by every case: the profiling campaign is
/// deterministic and technique-independent, and retraining per proptest
/// case would dominate the runtime.
fn models() -> &'static ClassModelSet {
    static MODELS: OnceLock<ClassModelSet> = OnceLock::new();
    MODELS.get_or_init(|| {
        PcsController::train_for(&fig6::topology(100), NodeCapacity::XEON_E5645, 62015)
            .expect("profiling campaign trains")
    })
}

/// The disruption axis of the config space. Faults and autoscaling are
/// mutually exclusive here as in the scenario families (`failures` vs
/// `elastic`); both leave their mark on timelines and series rows.
#[derive(Debug, Clone, Copy)]
enum Disruption {
    None,
    OneShotKill,
    KillRestore,
    Autoscale,
}

/// Runs one short fig6-style cell with the observability layer retaining
/// **every** measured timeline (`top_k` = `usize::MAX`).
fn run_observed(
    technique: &TechniqueRef,
    rate: f64,
    seed: u64,
    disruption: Disruption,
) -> RunReport {
    let grid = fig6::Fig6Config {
        seed,
        // 12 s horizon / 2 s warm-up: enough traffic for cohorts and
        // mechanism activity while keeping a proptest case sub-second.
        horizon_scale: 0.2,
        observe: Some(usize::MAX),
        ..fig6::Fig6Config::default()
    };
    let mut config = fig6::cell_config(&grid, rate);
    match disruption {
        Disruption::None => {}
        Disruption::OneShotKill => {
            config.faults = FaultPlan::one_shot(config.node_count, seed, SimTime::from_secs(4));
        }
        Disruption::KillRestore => {
            config.faults = FaultPlan::kill_restore(
                config.node_count,
                seed,
                SimTime::from_secs(4),
                SimDuration::from_secs(3),
            );
        }
        Disruption::Autoscale => {
            config.autoscale = Some(AutoscaleConfig {
                target_utilization: 0.55,
                step: 1,
                cooldown: SimDuration::from_secs(2),
                cold_start: SimDuration::from_millis(400),
                min_nodes: 8,
                max_nodes: config.node_count,
                slo_p99_ms: 20.0,
            });
        }
    }
    fig6::run_cell_with_epsilon(&config, technique.as_ref(), models(), grid.epsilon_secs)
}

/// The layer's structural invariants, checked against a finished report.
fn assert_observe_invariants(report: &RunReport, node_count: usize) {
    let obs = report.observe.as_ref().expect("observe section present");

    // The traced population is exactly the measured completions (warm-up
    // completions feed audit windows but are never retained), and a huge
    // top-K retains every one of them.
    assert_eq!(
        obs.requests_traced, report.overall_latency.count as u64,
        "traced population must match the latency recorder's"
    );
    assert_eq!(obs.timelines.len() as u64, obs.requests_traced);

    // Retention order: slowest first, ties by request id ascending.
    for pair in obs.timelines.windows(2) {
        assert!(
            (pair[1].total, pair[0].id) < (pair[0].total, pair[1].id),
            "timelines must be ordered by (latency desc, id asc)"
        );
    }

    for t in &obs.timelines {
        // The header is self-consistent …
        assert_eq!(t.total, t.completed - t.arrived);
        // … every segment is non-empty and they telescope from arrival
        // to completion with no gaps or overlaps …
        for s in &t.segments {
            assert!(s.end > s.start, "zero-length segments are never retained");
        }
        for pair in t.segments.windows(2) {
            assert_eq!(
                pair[0].end, pair[1].start,
                "request {}: segments must be contiguous",
                t.id
            );
        }
        match (t.segments.first(), t.segments.last()) {
            (Some(first), Some(last)) => {
                assert_eq!(first.start, t.arrived);
                assert_eq!(last.end, t.completed);
            }
            _ => assert!(
                t.total.is_zero(),
                "only a zero-latency request has no segments"
            ),
        }
        // … so the durations sum bit-exactly to the recorded latency.
        let sum: u64 = t.segments.iter().map(|s| s.duration().as_micros()).sum();
        assert_eq!(
            sum,
            t.total.as_micros(),
            "request {}: segments must sum to its end-to-end latency",
            t.id
        );
    }

    // With every timeline retained, the attribution is recomputable: the
    // cohort ranges come from the same helper the observer uses, over the
    // same ascending (latency, id) order, and each cohort's segment time
    // equals the sum of its members' totals (segments sum to totals).
    let mut ascending: Vec<_> = obs.timelines.iter().collect();
    ascending.sort_by(|a, b| a.total.cmp(&b.total).then(a.id.cmp(&b.id)));
    match pcs_monitor::cohort_ranges(ascending.len()) {
        None => assert_eq!(obs.attribution.tail_count, 0),
        Some((median_range, tail_range)) => {
            assert_eq!(obs.attribution.median_count, median_range.len());
            assert_eq!(obs.attribution.tail_count, tail_range.len());
            let micros = |r: &std::ops::Range<usize>| {
                ascending[r.clone()]
                    .iter()
                    .map(|t| t.total.as_micros())
                    .sum::<u64>()
            };
            assert_eq!(obs.attribution.tail_micros, micros(&tail_range));
            assert_eq!(obs.attribution.median_micros, micros(&median_range));
            // Blame buckets partition (a capped subset of) the tail time.
            let blamed: u64 = obs.attribution.blame.iter().map(|b| b.tail_micros).sum();
            assert!(blamed <= obs.attribution.tail_micros);
            for pair in obs.attribution.blame.windows(2) {
                assert!(
                    pair[0].tail_micros >= pair[1].tail_micros,
                    "blame must be ordered heaviest first"
                );
            }
        }
    }

    // Time-series rows are strictly time-ordered and sized to the fleet.
    for pair in obs.series.windows(2) {
        assert!(pair[0].at < pair[1].at);
    }
    for row in &obs.series {
        assert_eq!(row.node_utilization.len(), node_count);
        assert_eq!(row.node_queue_depth.len(), node_count);
        for &u in &row.node_utilization {
            assert!(u.is_finite() && u >= 0.0);
        }
    }

    // Audits carry the observer-assigned 1-based interval index, strictly
    // increasing, with finite predictions.
    for pair in obs.audits.windows(2) {
        assert!(pair[0].interval < pair[1].interval);
    }
    for audit in &obs.audits {
        assert!(audit.interval >= 1);
        assert!(audit.predicted_overall.is_finite());
        if let Some(delta) = audit.realized_delta {
            assert!(delta.is_finite());
        }
    }
}

proptest! {
    // Every case runs a full (short) discrete-event simulation; 24 cases
    // keep the test a few seconds while covering the whole config cross
    // product over repeated runs.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn critical_paths_sum_bit_exactly_across_random_configs(
        tech in 0usize..7,
        disruption in 0usize..4,
        rate in 50.0f64..150.0,
        seed in 1u64..1_000_000,
    ) {
        let disruption = [
            Disruption::None,
            Disruption::OneShotKill,
            Disruption::KillRestore,
            Disruption::Autoscale,
        ][disruption];
        let technique = match disruption {
            // Membership churn pairs with the elastic technique set
            // (replication groups do not resize mid-run).
            Disruption::Autoscale => {
                [techniques::basic(), techniques::ll(), techniques::pcs()][tech % 3].clone()
            }
            _ => [
                techniques::basic(),
                techniques::ll(),
                techniques::pcs(),
                techniques::red(2),
                techniques::red(3),
                techniques::ri(90.0),
                techniques::ri(99.0),
            ][tech].clone(),
        };
        let report = run_observed(&technique, rate, seed, disruption);
        prop_assert!(report.overall_latency.count > 0, "the cell must serve traffic");
        assert_observe_invariants(&report, 30);
    }
}

/// Reissue waits reach the critical path: when an RI duplicate wins its
/// partition, the time before the duplicate even existed is attributed as
/// [`SegmentKind::ReissueWait`], not queueing. Fixed seed — deterministic.
#[test]
fn reissue_wait_segments_appear_under_aggressive_reissue() {
    let report = run_observed(&techniques::ri(90.0), 140.0, 7, Disruption::None);
    assert!(report.stats.reissues > 0, "RI-90 at 140 req/s must reissue");
    let obs = report.observe.as_ref().unwrap();
    let reissue_waits = obs
        .timelines
        .iter()
        .flat_map(|t| &t.segments)
        .filter(|s| s.kind == SegmentKind::ReissueWait)
        .count();
    assert!(
        reissue_waits > 0,
        "some winning duplicate must put its reissue wait on the critical path"
    );
    assert_observe_invariants(&report, 30);
}

/// A kill+restore leaves its mark on both streams: the series rows see
/// the node down, and segments recorded during the outage carry the
/// fault flag. Fixed seed — deterministic.
#[test]
fn faults_mark_series_rows_and_segment_flags() {
    let report = run_observed(&techniques::pcs(), 100.0, 11, Disruption::KillRestore);
    assert!(report.faults.stats.kills > 0);
    let obs = report.observe.as_ref().unwrap();
    assert!(
        obs.series.iter().any(|row| row.down_nodes > 0),
        "a monitor boundary must land inside the 3 s outage"
    );
    let flagged = obs
        .timelines
        .iter()
        .flat_map(|t| &t.segments)
        .any(|s| s.flags & pcs_sim::observe::FLAG_FAULT != 0);
    assert!(
        flagged,
        "segments recorded during the outage carry the fault flag"
    );
    assert_observe_invariants(&report, 30);
}

/// Autoscaling leaves its mark: some window shows warming or draining
/// nodes, and the window deltas pick up the scale actions. Fixed seed —
/// deterministic.
#[test]
fn autoscale_activity_reaches_the_time_series() {
    let report = run_observed(&techniques::pcs(), 60.0, 13, Disruption::Autoscale);
    let actions =
        report.autoscale.stats.scale_out_actions + report.autoscale.stats.scale_in_actions;
    assert!(actions > 0, "a 55% target at 60 req/s must consolidate");
    let obs = report.observe.as_ref().unwrap();
    assert!(
        obs.series
            .iter()
            .any(|row| row.warming_nodes > 0 || row.draining_nodes > 0),
        "some boundary must catch a node mid-transition"
    );
    let windowed: u64 = obs.series.iter().map(|row| row.autoscale_actions).sum();
    assert!(windowed > 0, "window deltas must pick up the scale actions");
    assert_observe_invariants(&report, 30);
}
