//! Reduction properties of the imperfect-information subsystems, end to
//! end through real simulations: every new dial, turned to its neutral
//! position, must vanish without a trace.
//!
//! * a straggler plan whose slowdown factor is exactly 1.0 leaves the
//!   simulated trajectory identical to the clean run (only the
//!   degrade/recover bookkeeping counters move);
//! * a configured-but-perfect [`FailureDetector`] produces a report
//!   identical to running with no detector at all, faults and all;
//! * `pcs-n0` (prediction noise with σ = 0) is identical to plain `pcs`.
//!
//! Each property holds across techniques, arrival rates and seeds —
//! proptest sweeps the cross product with full short simulations.

use pcs::controller::PcsController;
use pcs::experiments::fig6;
use pcs::techniques::{self, TechniqueRef};
use pcs_core::ClassModelSet;
use pcs_sim::{FailureDetector, FaultPlan, RunReport, SimConfig};
use pcs_types::{NodeCapacity, SimDuration, SimTime};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One trained model set shared by every case (the profiling campaign is
/// deterministic and technique-independent; retraining per case would
/// dominate the runtime).
fn models() -> &'static ClassModelSet {
    static MODELS: OnceLock<ClassModelSet> = OnceLock::new();
    MODELS.get_or_init(|| {
        PcsController::train_for(&fig6::topology(100), NodeCapacity::XEON_E5645, 62015)
            .expect("profiling campaign trains")
    })
}

/// A short fig6-style cell config (12 s horizon / 2 s warm-up).
fn short_config(rate: f64, seed: u64) -> (SimConfig, f64) {
    let grid = fig6::Fig6Config {
        seed,
        horizon_scale: 0.2,
        ..fig6::Fig6Config::default()
    };
    (fig6::cell_config(&grid, rate), grid.epsilon_secs)
}

fn run(config: &SimConfig, technique: &TechniqueRef, epsilon_secs: f64) -> RunReport {
    fig6::run_cell_with_epsilon(config, technique.as_ref(), models(), epsilon_secs)
}

/// Field-by-field report equality for everything a trajectory determines
/// (the technique name is excluded so renamed aliases can compare).
fn assert_same_trajectory(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.measured_from, b.measured_from, "{what}: measured_from");
    assert_eq!(a.ended_at, b.ended_at, "{what}: ended_at");
    assert_eq!(
        a.component_latency, b.component_latency,
        "{what}: component latency"
    );
    assert_eq!(
        a.overall_latency, b.overall_latency,
        "{what}: overall latency"
    );
    assert_eq!(a.stats, b.stats, "{what}: technique stats");
    assert_eq!(a.faults, b.faults, "{what}: fault report");
    assert_eq!(a.autoscale, b.autoscale, "{what}: autoscale report");
}

fn technique_under_test(index: usize) -> TechniqueRef {
    [techniques::basic(), techniques::ll(), techniques::pcs()][index].clone()
}

proptest! {
    // Every case runs two or three full (short) simulations; a small case
    // count keeps the suite fast while sweeping the cross product over
    // repeated runs.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A degrade whose factor is exactly 1.0 changes no service time and
    /// leaves the node's slowdown multiplier untouched, so the world
    /// treats it as idempotent: the counters never move, the straggler
    /// window never opens, and the full trajectory — distributions,
    /// counters, fault report — matches the clean run exactly. (Only the
    /// engine's raw event count sees the two scheduled no-ops.)
    #[test]
    fn unit_factor_stragglers_reduce_to_the_clean_run(
        tech in 0usize..3,
        rate in 60.0f64..140.0,
        seed in 1u64..1_000_000,
    ) {
        let technique = technique_under_test(tech);
        let (clean_config, epsilon) = short_config(rate, seed);
        let mut degraded_config = clean_config.clone();
        degraded_config.faults = FaultPlan::slow_node(
            4,
            seed,
            SimTime::from_secs(4),
            SimDuration::from_secs(5),
            1.0,
        );

        let clean = run(&clean_config, &technique, epsilon);
        let degraded = run(&degraded_config, &technique, epsilon);

        prop_assert!(clean.overall_latency.count > 0, "the cell must serve traffic");
        prop_assert_eq!(degraded.faults.stats.degrades, 0);
        prop_assert_eq!(degraded.faults.stats.recovers, 0);
        assert_eq!(clean.measured_from, degraded.measured_from);
        assert_eq!(clean.ended_at, degraded.ended_at);
        assert_eq!(clean.component_latency, degraded.component_latency);
        assert_eq!(clean.overall_latency, degraded.overall_latency);
        assert_eq!(clean.stats, degraded.stats);
        assert_eq!(clean.faults.stats, degraded.faults.stats);
        // The straggler window never opens (no effective degrade), so the
        // gray-window summary stays empty like the clean run's. The
        // pre/during/post split is the one place the plan's mere presence
        // shows: a non-empty plan routes completions into `pre_fault`,
        // while the clean run's phase summaries stay EMPTY — the split is
        // bookkeeping over the same completions, not a trajectory change.
        assert_eq!(clean.faults.degraded, degraded.faults.degraded);
        assert_eq!(
            degraded.faults.pre_fault.count,
            degraded.component_latency.count
        );
    }

    /// A perfect detector (zero latency, zero error rates) relays ground
    /// truth, so configuring it is identical to configuring none — even
    /// while a kill-restore outage exercises the liveness channel.
    #[test]
    fn a_perfect_detector_reduces_to_no_detector(
        tech in 0usize..3,
        rate in 60.0f64..140.0,
        seed in 1u64..1_000_000,
    ) {
        let technique = technique_under_test(tech);
        let (mut base, epsilon) = short_config(rate, seed);
        base.faults = FaultPlan::kill_restore(
            base.node_count,
            seed,
            SimTime::from_secs(4),
            SimDuration::from_secs(3),
        );
        let mut detected = base.clone();
        detected.detector = Some(FailureDetector::perfect());

        let plain = run(&base, &technique, epsilon);
        let observed = run(&detected, &technique, epsilon);
        prop_assert!(plain.faults.stats.kills > 0, "the outage must strike");
        assert_same_trajectory(&plain, &observed, "perfect detector");
        prop_assert_eq!(plain.events_processed, observed.events_processed);
    }

    /// σ = 0 noise multiplies every demand estimate by exactly 1, so the
    /// `pcs-n0` technique reproduces plain `pcs` decision for decision.
    #[test]
    fn sigma_zero_noise_reduces_to_plain_pcs(
        rate in 60.0f64..140.0,
        seed in 1u64..1_000_000,
    ) {
        let (config, epsilon) = short_config(rate, seed);
        let plain = run(&config, &techniques::pcs(), epsilon);
        let noisy = run(&config, &techniques::pcs_noisy(0.0), epsilon);
        prop_assert!(plain.stats.requests_completed > 0);
        prop_assert_eq!(noisy.technique.as_str(), "PCS-N0");
        assert_same_trajectory(&plain, &noisy, "pcs-n0");
        prop_assert_eq!(plain.events_processed, noisy.events_processed);
    }
}

/// The reductions compose: the imperfect scenario's clean level (factor
/// 1.0 ⇒ no plan, perfect detector ⇒ none, σ = 0 ⇒ plain pcs) runs cells
/// that are bit-identical to a pristine fig6-style run. Fixed seed —
/// deterministic.
#[test]
fn the_clean_level_composes_all_three_reductions() {
    let (config, epsilon) = short_config(100.0, 62024);
    let pristine = run(&config, &techniques::pcs(), epsilon);

    let mut dialled = config.clone();
    dialled.faults = FaultPlan::none();
    dialled.detector = None;
    let clean_cell = run(&dialled, &techniques::pcs_noisy(0.0), epsilon);

    assert_same_trajectory(&pristine, &clean_cell, "clean level");
}
