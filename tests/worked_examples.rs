//! Worked-example tests mirroring the paper's Figures 3 and 4.
//!
//! The figures' concrete millisecond values are illustrative (the paper
//! does not publish the underlying contention data), so these tests assert
//! the *semantics* the figures demonstrate: Eq. 5's matrix entry as the
//! overall-latency delta, Table III's four contention-update cases, the
//! self-gain tie-break of Algorithm 1 line 7, and the column/row update
//! pattern of Algorithm 2.

use pcs_core::{
    ClassModelSet, ComponentInput, ComponentScheduler, MatrixConfig, MatrixInputs, NodeInput,
    PerformanceMatrix, SchedulerConfig,
};
use pcs_regression::{CombinedServiceTimeModel, SampleSet, TrainingConfig};
use pcs_types::{ComponentId, ContentionVector, NodeCapacity, NodeId, ResourceVector};

/// Service time exactly 1 ms · (1 + core usage), so every latency below is
/// analytically checkable.
fn linear_models() -> ClassModelSet {
    let mut set = SampleSet::new();
    for i in 0..60 {
        let t = i as f64 / 30.0;
        set.push(ContentionVector::new(t, 0.0, 0.0, 0.0), 0.001 * (1.0 + t));
    }
    ClassModelSet::new(vec![CombinedServiceTimeModel::train(
        &set,
        TrainingConfig::default(),
    )
    .unwrap()])
}

/// Figure 3's shape: three stages, stage 2 parallelised into two
/// components; λ = 0 so latencies are pure service times.
fn figure3_inputs() -> MatrixInputs {
    let node_loads = [6.0, 4.0, 2.0, 0.0];
    let placement = [0usize, 1, 2, 1]; // c0@n0, c1@n1, c2@n2, c3@n1
    let stages = [0usize, 1, 1, 2];
    MatrixInputs {
        nodes: node_loads
            .iter()
            .enumerate()
            .map(|(j, &cores)| NodeInput {
                id: NodeId::from_index(j),
                capacity: NodeCapacity::new(12.0, 200.0, 125.0),
                demand: ResourceVector::new(cores, 0.0, 0.0, 0.0),
                samples: vec![],
            })
            .collect(),
        components: placement
            .iter()
            .zip(stages)
            .enumerate()
            .map(|(i, (&node, stage))| ComponentInput {
                id: ComponentId::from_index(i),
                class: 0,
                stage,
                node: NodeId::from_index(node),
                demand: ResourceVector::new(1.2, 0.0, 0.0, 0.0),
                arrival_rate: 0.0,
                scv: 1.0,
            })
            .collect(),
        stage_count: 3,
    }
}

/// Expected latency of a component under the linear model, given the
/// node's monitored aggregate demand in cores. `NodeInput::demand` is the
/// full node-level aggregate (it already includes every resident program,
/// exactly what `/proc`-style monitoring reports), so no component demand
/// is added here.
fn expected_ms(aggregate_cores: f64) -> f64 {
    1.0 + aggregate_cores / 12.0
}

#[test]
fn figure3_matrix_entry_is_overall_delta() {
    let models = linear_models();
    let m = PerformanceMatrix::build(&figure3_inputs(), &models, MatrixConfig::default());

    // Baseline latencies follow each node's monitored aggregate.
    let l_c0 = expected_ms(6.0); // n0
    let l_c1 = expected_ms(4.0); // n1
    let l_c2 = expected_ms(2.0); // n2
    let l_c3 = expected_ms(4.0); // n1
    assert!((m.component_latency(ComponentId::new(1)) * 1e3 - l_c1).abs() < 0.02);

    // Overall = stage0 (c0) + max(c1, c2) + stage2 (c3), per Eq. 3–4.
    let expected_overall = l_c0 + l_c1.max(l_c2) + l_c3;
    assert!(
        (m.overall_latency() * 1e3 - expected_overall).abs() < 0.05,
        "overall {:.3} vs expected {expected_overall:.3}",
        m.overall_latency() * 1e3
    );

    // Eq. 5 / Table III for migrating c1 (stage-1 max) to the idle n3:
    //  - c1 experiences n3's pre-migration aggregate (0 cores): 1.0 ms;
    //  - c3 on the origin n1 sees U − U_c1 = (4 − 1.2) cores;
    //  - stage 1 max becomes c2's latency.
    let l_c1_new = expected_ms(0.0);
    let l_c3_new = expected_ms(4.0 - 1.2);
    let overall_after = l_c0 + l_c1_new.max(l_c2) + l_c3_new;
    let gain = m.gain(ComponentId::new(1), NodeId::new(3));
    assert!(
        (gain * 1e3 - (expected_overall - overall_after)).abs() < 0.05,
        "L[1][3] = {:.3} ms, expected {:.3} ms",
        gain * 1e3,
        expected_overall - overall_after
    );
}

#[test]
fn figure4_tie_breaks_by_self_gain() {
    // Figure 4: two destinations give the same overall reduction; the
    // algorithm picks the one that reduces the migrant's own latency more.
    // Construction: the migrant (c1, stage 1) is NOT the stage max (c2
    // is, from a hot node), so the overall gain of moving c1 comes only
    // from its origin co-resident c3 (stage 2) improving — identical for
    // every destination. Its own latency differs per destination.
    let node_loads = [6.0, 0.5, 3.0, 9.0];
    let placement = [0usize, 0, 3, 0]; // c0, c1, c3 on n0; c2 on n3 (hot)
    let stages = [0usize, 1, 1, 2];
    let inputs = MatrixInputs {
        nodes: node_loads
            .iter()
            .enumerate()
            .map(|(j, &cores)| NodeInput {
                id: NodeId::from_index(j),
                capacity: NodeCapacity::new(12.0, 200.0, 125.0),
                demand: ResourceVector::new(cores, 0.0, 0.0, 0.0),
                samples: vec![],
            })
            .collect(),
        components: placement
            .iter()
            .zip(stages)
            .enumerate()
            .map(|(i, (&node, stage))| ComponentInput {
                id: ComponentId::from_index(i),
                class: 0,
                stage,
                node: NodeId::from_index(node),
                demand: ResourceVector::new(1.0, 0.0, 0.0, 0.0),
                arrival_rate: 0.0,
                scv: 1.0,
            })
            .collect(),
        stage_count: 3,
    };
    let models = linear_models();
    let matrix = PerformanceMatrix::build(&inputs, &models, MatrixConfig::default());

    // Moving c1 to n1 or n2 has (nearly) the same overall gain…
    let g1 = matrix.gain(ComponentId::new(1), NodeId::new(1));
    let g2 = matrix.gain(ComponentId::new(1), NodeId::new(2));
    assert!(g1 > 0.0 && g2 > 0.0);
    assert!(
        (g1 - g2).abs() < 0.05 * g1.max(g2),
        "overall gains should tie: {g1} vs {g2}"
    );
    // …but n1 (0.5 cores) reduces c1's own latency more than n2 (3 cores).
    assert!(
        matrix.self_gain(ComponentId::new(1), NodeId::new(1))
            > matrix.self_gain(ComponentId::new(1), NodeId::new(2))
    );

    // The greedy therefore routes c1 to n1, exactly like Figure 4 routes
    // c2 to the node with the larger self-reduction.
    let best = matrix.best_candidate(&[false, true, false, false]).unwrap();
    assert_eq!(best.component, ComponentId::new(1));
    assert_eq!(best.destination, NodeId::new(1));
}

#[test]
fn migration_threshold_stops_the_loop() {
    // Figure 4's closing observation: after the accepted migration, every
    // remaining entry is below ε = 5 ms and scheduling stops.
    let models = linear_models();
    let inputs = figure3_inputs();
    let scheduler = ComponentScheduler::new(SchedulerConfig {
        epsilon_secs: 0.005, // the paper's 5 ms — larger than any gain here
        max_migrations: None,
        full_rebuild: false,
    });
    let outcome = scheduler.schedule(&inputs, &models, MatrixConfig::default());
    assert!(outcome.decisions.is_empty());

    // With a micro-threshold the same state yields migrations.
    let eager = ComponentScheduler::new(SchedulerConfig {
        epsilon_secs: 1e-6,
        max_migrations: None,
        full_rebuild: false,
    });
    let outcome = eager.schedule(&inputs, &models, MatrixConfig::default());
    assert!(!outcome.decisions.is_empty());
    assert!(outcome.predicted_after < outcome.predicted_before);
}

#[test]
fn algorithm2_refreshes_touched_columns_and_rows() {
    let models = linear_models();
    let mut matrix = PerformanceMatrix::build(&figure3_inputs(), &models, MatrixConfig::default());
    // Accept the best migration for c1.
    let candidates = [true, true, true, true];
    let best = matrix.best_candidate(&candidates).unwrap();
    let mut candidates = candidates;
    candidates[best.component.index()] = false;
    let origin = matrix.apply_migration(best.component, best.destination, &candidates);

    // Touched entries must equal a from-scratch recomputation.
    let mut rebuilt = matrix.clone();
    rebuilt.rebuild_entries();
    #[allow(clippy::needless_range_loop)]
    for i in 0..4 {
        let c = ComponentId::from_index(i);
        if !candidates[i] {
            continue; // removed row stays stale by design
        }
        for &node in &[origin, best.destination] {
            assert!(
                (matrix.gain(c, node) - rebuilt.gain(c, node)).abs() < 1e-12,
                "column entry ({i}, {node}) stale after UpdateMatrix"
            );
        }
        let home = matrix.allocation()[i];
        if home == origin || home == best.destination {
            for j in 0..4 {
                let n = NodeId::from_index(j);
                assert!(
                    (matrix.gain(c, n) - rebuilt.gain(c, n)).abs() < 1e-12,
                    "row entry ({i}, {j}) stale after UpdateMatrix"
                );
            }
        }
    }
}
