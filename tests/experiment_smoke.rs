//! Fast smoke tests for the experiment pipeline: each figure driver runs
//! end to end on a tiny topology / short horizon so its code path is
//! exercised in the `#[test]` tier without the paper-scale budgets the
//! `pcs-bench` binaries use. These assert structure and sanity, not the
//! paper's numbers — `tests/end_to_end.rs` owns the qualitative claims.

use pcs::experiments::{fig5, fig6, fig7};
use pcs::techniques;
use pcs_sim::Simulation;

#[test]
fn fig5_pipeline_smoke() {
    // A fraction of the default sampling budget; enough for the
    // leave-one-out training to converge on every case.
    let result = fig5::run(fig5::Fig5Config {
        samples_per_point: 16,
        draws_per_sample: 10,
        measure_draws: 500,
        ..fig5::Fig5Config::default()
    });
    assert_eq!(result.cases.len(), 3 * 20 + 3 * 10, "full case grid");
    for case in &result.cases {
        assert!(
            case.predicted_ms.is_finite() && case.predicted_ms > 0.0,
            "bad prediction for {:?}@{}MB: {}",
            case.workload,
            case.input_mb,
            case.predicted_ms
        );
        assert!(case.actual_ms.is_finite() && case.actual_ms > 0.0);
        assert!(case.error_pct.is_finite() && case.error_pct >= 0.0);
    }
    assert!(result.mean_error_pct.is_finite());
    assert!(result.buckets[0] <= result.buckets[1] && result.buckets[1] <= result.buckets[2]);
}

#[test]
fn fig6_pipeline_smoke() {
    // One rate, three techniques (one from each family), a fifth of the
    // default horizon, a small searching pool.
    let cells = fig6::run_sweep(&fig6::Fig6Config {
        rates: vec![80.0],
        techniques: techniques::smoke_set(),
        search_vm_budget: 8,
        horizon_scale: 0.2,
        threads: 2,
        ..fig6::Fig6Config::default()
    });
    assert_eq!(cells.len(), 3);
    for cell in &cells {
        assert!(
            cell.report.stats.requests_completed > 100,
            "{}: too few completions ({})",
            cell.technique.name(),
            cell.report.stats.requests_completed
        );
        assert!(cell.report.overall_latency.mean > 0.0);
        assert!(cell.report.component_latency.p99 >= cell.report.component_latency.p50);
    }
    let headline = fig6::headline(&cells);
    assert!(headline.tail_reduction.is_finite());
    assert!(headline.overall_reduction.is_finite());
}

#[test]
fn fig7_pipeline_smoke() {
    // One small grid point instead of the paper's series up to 640×128.
    let point = fig7::measure_point(12, 4, 2, 7);
    assert_eq!((point.components, point.nodes), (12, 4));
    assert!(point.analysis_ms.is_finite() && point.analysis_ms >= 0.0);
    assert!(point.search_ms.is_finite() && point.search_ms >= 0.0);
    assert!(point.total_ms() >= point.analysis_ms);
    assert!(point.migrations > 0, "the greedy search must do real work");
}

#[test]
fn fig6_single_cell_is_deterministic() {
    // The sweep compares techniques on a common trace; that only means
    // anything if a cell re-run reproduces exactly. (Single-threaded
    // re-check of what the parallel sweep assumes.)
    let config = pcs_sim::SimConfig::paper_like(fig6::topology(8), 80.0, 2026);
    let run = |cfg: &pcs_sim::SimConfig| {
        let mut cfg = cfg.clone();
        cfg.horizon = cfg.horizon.mul_f64(0.2);
        cfg.warmup = cfg.warmup.mul_f64(0.2);
        Simulation::new(
            cfg,
            Box::new(pcs_sim::BasicPolicy),
            Box::new(pcs_sim::NoopScheduler),
        )
        .run()
    };
    let a = run(&config);
    let b = run(&config);
    assert_eq!(a.stats, b.stats);
    assert_eq!(
        a.overall_latency.mean.to_bits(),
        b.overall_latency.mean.to_bits()
    );
}
